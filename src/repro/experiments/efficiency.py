"""Training-efficiency studies: convergence (Fig. 5), scalability (Fig. 6),
and the computation/communication breakdown (Fig. 7)."""

from __future__ import annotations

from repro.experiments.common import (
    ALL_SYSTEMS,
    SYSTEM_LABELS,
    ExperimentResult,
    base_config,
    dataset_bundle,
    run_system,
)


def run_fig5(
    scale: float = 0.05,
    epochs: int = 8,
    seed: int = 0,
    dataset: str = "fb15k",
) -> ExperimentResult:
    """Fig. 5: MRR-vs-simulated-time convergence curves per system.

    Paper shape: all systems converge to similar accuracy; HET-KG curves
    reach any given accuracy earlier (less time per epoch).
    """
    bundle = dataset_bundle(dataset, scale=scale, seed=seed)
    config = base_config(epochs=epochs, seed=seed)
    series: dict[str, list[tuple[float, float]]] = {}
    rows = []
    for system in ALL_SYSTEMS:
        result = run_system(
            system, config, bundle, eval_every=2, eval_max_queries=100
        )
        times, mrrs = result.history.series("mrr")
        label = SYSTEM_LABELS[system]
        series[label] = list(zip(times, mrrs))
        target = 0.8 * max(mrrs)
        rows.append(
            [
                label,
                result.sim_time,
                result.final_metrics.get("mrr", 0.0),
                result.history.time_to_reach("mrr", target) or float("nan"),
            ]
        )
    return ExperimentResult(
        experiment_id="fig5",
        title=f"Convergence on {dataset}: MRR vs simulated time",
        headers=["system", "total time (s)", "final MRR", "time to 80% of best MRR"],
        rows=rows,
        series=series,
        notes="paper: HET-KG reaches comparable accuracy in less time",
    )


def run_fig6(
    scale: float = 0.1,
    epochs: int = 2,
    seed: int = 0,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> ExperimentResult:
    """Fig. 6: speedup vs number of workers on Freebase-86m.

    Paper shape: PBG scales worst (dense relation transfer plus the lock
    server's floor(P/2) parallelism bound); HET-KG's average speedup is
    ~30% above DGL-KE's.

    The sweep uses the paper's scalability regime — TransE at d = 400 on
    CPU workers, where per-batch compute is substantial — so the compute
    throughput is set to a CPU-bound figure; with compute negligible, no
    ingress-limited PS system scales and the comparison degenerates.
    """
    bundle = dataset_bundle("freebase86m-mini", scale=scale, seed=seed)
    systems = ("pbg", "dglke", "hetkg-d")
    series: dict[str, list[tuple[float, float]]] = {}
    rows = []
    for system in systems:
        times = {}
        for k in worker_counts:
            config = base_config(
                epochs=epochs,
                seed=seed,
                num_machines=k,
                compute_throughput=4e8,
                # A cache slot pays off when its access frequency exceeds
                # 1/P (each slot costs one refresh row per P iterations);
                # this capacity/period pair sits at that break-even sweet
                # spot for the Freebase skew.
                cache_capacity=1024,
                sync_period=16,
            )
            result = run_system(system, config, bundle, eval_max_queries=1)
            times[k] = result.sim_time
        base_time = times[worker_counts[0]]
        speedups = [
            (float(k), base_time / times[k] if times[k] > 0 else 0.0)
            for k in worker_counts
        ]
        label = SYSTEM_LABELS[system]
        series[label] = speedups
        rows.append([label] + [s for _, s in speedups])
    return ExperimentResult(
        experiment_id="fig6",
        title="Scalability: speedup vs workers (freebase86m-mini)",
        headers=["system"] + [f"x{k} workers" for k in worker_counts],
        rows=rows,
        series=series,
        notes="paper: PBG flattest; HET-KG ~30% above DGL-KE's speedup",
    )


def run_fig7(
    scale: float = 0.05, epochs: int = 3, seed: int = 0
) -> ExperimentResult:
    """Fig. 7: per-system computation vs communication time.

    Paper shape: compute time is nearly identical for DGL-KE and HET-KG
    (the cache does not slow down the math); HET-KG's communication is
    lower; PBG's communication is by far the largest.
    """
    rows = []
    for dataset in ("fb15k", "wn18", "freebase86m-mini"):
        bundle = dataset_bundle(dataset, scale=scale, seed=seed)
        config = base_config(epochs=epochs, seed=seed)
        for system in ALL_SYSTEMS:
            result = run_system(system, config, bundle, eval_max_queries=1)
            rows.append(
                [
                    dataset,
                    SYSTEM_LABELS[system],
                    result.compute_time,
                    result.communication_time,
                    result.sim_time,
                ]
            )
    return ExperimentResult(
        experiment_id="fig7",
        title="Per-epoch computation vs communication breakdown",
        headers=["dataset", "system", "compute (s)", "communication (s)", "total (s)"],
        rows=rows,
        notes=(
            "paper: DGL-KE and HET-KG compute are close; HET-KG communicates "
            "less; PBG communication far exceeds the others"
        ),
    )
