"""Parallel experiment execution over process pools.

Every simulated run is single-threaded, CPU-bound, and fully determined by
its seeds, so independent runs (sweep points, separate experiments) scale
across cores with no coordination.  This module provides the one primitive
the CLI's ``--jobs N`` flag builds on:

:func:`parallel_map`
    An **order-preserving** map over a picklable task list.  Results come
    back indexed by submission position, never by completion time, so the
    output of ``jobs=N`` is element-for-element identical to ``jobs=1``.

Determinism contract
--------------------
``jobs=1`` executes the *same task function inline* (no pool, no pickling)
that the workers run, and each task is hermetic — it seeds its own RNGs
and shares no mutable state with its siblings.  Therefore a parallel sweep
report is byte-identical to the serial one; only wall-clock time differs.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.mp.pool import default_jobs, process_map

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["default_jobs", "parallel_map", "run_experiments"]


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: int = 1
) -> list[R]:
    """Map ``fn`` over ``items``, preserving input order in the result.

    Thin alias over :func:`repro.mp.pool.process_map` (the shared pool
    primitive the mp training/serving backend also uses): a module-level
    picklable ``fn``, picklable ``items`` when ``jobs > 1``, inline
    execution when ``jobs <= 1``, and first-failure exception propagation.
    """
    return process_map(fn, items, jobs=jobs)


# ------------------------------------------------------------ experiment map


def _run_named_experiment(task: tuple[str, dict[str, Any]]):
    """Worker body for :func:`run_experiments` (module-level: picklable)."""
    from repro.experiments.registry import get_experiment

    name, kwargs = task
    return name, get_experiment(name)(**kwargs)


def run_experiments(
    names: Sequence[str],
    jobs: int = 1,
    kwargs_per_name: Sequence[dict[str, Any]] | None = None,
) -> list[tuple[str, Any]]:
    """Run several registered experiments, optionally across processes.

    ``kwargs_per_name`` aligns with ``names`` (the CLI pre-filters each
    runner's accepted overrides).  Returns ``(name, ExperimentResult)``
    pairs in the order of ``names`` regardless of completion order.
    """
    if kwargs_per_name is None:
        kwargs_per_name = [{} for _ in names]
    if len(kwargs_per_name) != len(names):
        raise ValueError(
            f"kwargs_per_name has {len(kwargs_per_name)} entries "
            f"for {len(names)} experiments"
        )
    return parallel_map(
        _run_named_experiment, list(zip(names, kwargs_per_name)), jobs=jobs
    )
