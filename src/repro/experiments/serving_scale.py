"""Overload study: multi-tenant serving past saturation, under faults,
across version swaps.

The other serving experiments (:mod:`repro.experiments.serving_study`)
measure a server inside its comfort zone.  This one drives it past the
cliff on purpose and checks that the overload layer
(:mod:`repro.serving.admission`) fails *gracefully*:

* **Load sweep** — offered load is swept from well under to far past the
  measured saturation throughput.  Under the sweep's SLO the shed rate
  must rise monotonically past saturation while the p99 of *admitted*
  queries stays inside the SLO: the ladder trades completeness for
  predictability instead of letting every tenant's tail collapse
  together.
* **Fault window** — one over-saturation point additionally runs a
  PS-shard outage + drop window through the retrying
  :class:`~repro.serving.channel.FaultyShardChannel`: retries are
  metered, nothing raises, and timed-out batches surface as first-class
  ``timeout`` outcomes.
* **Version swap** — a mid-stream checkpoint publish
  (:mod:`repro.serving.deploy`) with and without pre-swap cache
  re-warming: the re-warmed swap must hold the post-swap hit ratio
  within 10% of the pre-swap window, while the naive (invalidate-only)
  swap shows the cliff.

Every cell is an independent seeded run, so ``jobs`` parallelism is
byte-identical to serial execution.
"""

from __future__ import annotations

from repro.core.trainer import make_trainer
from repro.experiments.common import (
    ExperimentResult,
    base_config,
    dataset_bundle,
)
from repro.experiments.parallel import parallel_map
from repro.faults.plan import FaultPlan
from repro.serving.admission import (
    AdmissionController,
    LoadShedder,
    assign_tenants,
)
from repro.serving.batcher import QueryBatcher
from repro.serving.cache import ServingCache
from repro.serving.deploy import (
    ContinuousDeployment,
    VersionedStore,
    snapshot_from_trainer,
)
from repro.serving.frontend import ServingFrontend
from repro.serving.metrics import ServingReport
from repro.serving.workload import WorkloadSpec, ZipfianWorkload

#: Offered arrival rates (queries/s); saturation for the sweep's model
#: and batcher sits near ~27k qps, so the top points are 2-5x past it.
LOAD_POINTS = (8_000.0, 16_000.0, 32_000.0, 64_000.0, 128_000.0)

#: The sweep's latency objective (simulated seconds).
SLO = 0.01

#: Tenant contracts: two priority tiers with generous buckets plus a
#: rate-capped ``free`` tier that admission control clips at high load.
ADMISSION_SPEC = "gold=1000000.0/512/p2,silver=1000000.0/512/p1,free=8000.0/64"

TENANTS = ("gold", "silver", "free")

#: Fault window for the fault-stressed point: shard 0 black-holed for
#: batches 5-8, then a lossy patch until batch 40.
FAULT_SPEC = "seed=7,retries=4x0.004,ps-out=0@5:8,drop=0.3@9:40"


def _shedder() -> LoadShedder:
    """The sweep's ladder: degrade early, shed tight, small priority
    stretch so even gold sheds before it busts the SLO."""
    return LoadShedder(
        slo=SLO, degrade_at=0.4, enter=0.7, exit=0.45, priority_slack=0.2
    )


def _serve_point(task: tuple[float, float, int, int, int, str | None]):
    """One offered-load point (module-level: picklable, hermetic)."""
    rate, scale, epochs, seed, num_queries, fault_spec = task
    bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
    config = base_config(
        epochs=epochs,
        seed=seed,
        dim=8,
        batch_size=32,
        num_negatives=4,
        num_machines=2,
        cache_capacity=64,
        sync_period=4,
    )
    trainer = make_trainer("hetkg-d", config)
    trainer.train(bundle.split.train)
    store = snapshot_from_trainer(trainer)
    capacity = max(2, int(0.1 * (store.num_entities + store.num_relations)))
    spec = WorkloadSpec(num_queries=num_queries, arrival_rate=rate, seed=seed + 11)
    log = ZipfianWorkload.from_graph(bundle.graph, spec).generate()
    queries = assign_tenants(log.queries, TENANTS)
    frontend = ServingFrontend(
        store,
        batcher=QueryBatcher(max_batch=16, max_wait=2e-3),
        cache=ServingCache.dynamic(capacity, policy="lru"),
        byte_scale=25.0,
        admission=AdmissionController.parse(ADMISSION_SPEC),
        shedder=_shedder(),
        faults=FaultPlan.parse(fault_spec) if fault_spec else None,
    )
    label = f"{rate / 1e3:g}k qps" + ("+faults" if fault_spec else "")
    report = frontend.run(queries, label=label)
    retries = frontend.injector.stats.retries if frontend.injector else 0
    return rate, report, retries


def _swap_run(
    trainer, bundle, rewarm: bool, seed: int
) -> tuple[list[float], ServingReport]:
    """One chunked serving run with a mid-stream version swap.

    Returns the per-chunk hit ratios (the swap lands before chunk 8)
    and the final report.
    """
    vstore = VersionedStore(snapshot_from_trainer(trainer))
    capacity = max(2, int(0.25 * (vstore.num_entities + vstore.num_relations)))
    frontend = ServingFrontend(
        vstore,
        batcher=QueryBatcher(max_batch=16, max_wait=2e-3),
        cache=ServingCache.dynamic(capacity, policy="lru"),
        byte_scale=25.0,
    )
    deploy = ContinuousDeployment(vstore, frontend, rewarm=rewarm)
    spec = WorkloadSpec(
        num_queries=1600, arrival_rate=2000.0, seed=seed + 11, zipf_exponent=1.6
    )
    log = ZipfianWorkload.from_graph(bundle.graph, spec).generate()
    per_chunk = []
    report = None
    for j in range(16):
        chunk = log.queries[j * 100 : (j + 1) * 100]
        if j == 8:
            deploy.publish(trainer, step=100)
        hits0, misses0 = frontend.cache.hits, frontend.cache.misses
        report = frontend.run(chunk)
        delta = (frontend.cache.hits - hits0) + (frontend.cache.misses - misses0)
        per_chunk.append((frontend.cache.hits - hits0) / max(1, delta))
    return per_chunk, report


def run_serving_scale(
    scale: float = 0.02,
    epochs: int = 1,
    seed: int = 0,
    num_queries: int = 800,
    jobs: int = 1,
) -> ExperimentResult:
    """serving-scale: graceful degradation past saturation.

    Asserted invariants (the experiment fails loudly if the overload
    layer regresses):

    * shed rate is monotone non-decreasing in offered load;
    * at the top load points (>= 2x saturation) the shed rate is
      positive and the p99 of admitted queries stays within the SLO;
    * the fault-stressed point meters retries without raising;
    * the re-warmed version swap holds the post-swap hit ratio within
      10% of the pre-swap window; the naive swap drops further.
    """
    tasks = [
        (rate, scale, epochs, seed, num_queries, None) for rate in LOAD_POINTS
    ]
    # Fault-stressed point at ~2x saturation.
    tasks.append((64_000.0, scale, epochs, seed, num_queries, FAULT_SPEC))
    outcomes = parallel_map(_serve_point, tasks, jobs=jobs)

    rows = []
    series: dict[str, list[tuple[float, float]]] = {
        "shed-rate": [],
        "goodput": [],
        "p99-admitted-ms": [],
    }
    sweep = outcomes[: len(LOAD_POINTS)]
    for rate, report, _retries in sweep:
        rows.append(report.as_row())
        series["shed-rate"].append((rate, report.shed_rate))
        series["goodput"].append((rate, report.goodput))
        series["p99-admitted-ms"].append((rate, report.latency_p99 * 1e3))

    shed_rates = [report.shed_rate for _, report, _ in sweep]
    assert all(
        b >= a - 1e-12 for a, b in zip(shed_rates, shed_rates[1:])
    ), f"shed rate must be monotone in offered load, got {shed_rates}"
    for rate, report, _ in sweep[-2:]:
        assert report.shed_rate > 0.0, (
            f"expected shedding at {rate:g} qps (past saturation), "
            f"got shed rate {report.shed_rate}"
        )
        assert report.latency_p99 <= SLO, (
            f"p99 of admitted queries must stay within the SLO under "
            f"shedding at {rate:g} qps: {report.latency_p99 * 1e3:.2f} ms "
            f"vs {SLO * 1e3:.2f} ms"
        )

    fault_rate, fault_report, fault_retries = outcomes[len(LOAD_POINTS)]
    rows.append(fault_report.as_row())
    assert fault_retries > 0, "fault window should have metered retries"

    # --- the version-swap comparison (serial: shares one trainer).
    bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
    config = base_config(
        epochs=epochs,
        seed=seed,
        dim=8,
        batch_size=32,
        num_negatives=4,
        num_machines=2,
        cache_capacity=64,
        sync_period=4,
    )
    trainer = make_trainer("hetkg-d", config)
    trainer.train(bundle.split.train)
    warm_curve, warm_report = _swap_run(trainer, bundle, rewarm=True, seed=seed)
    cold_curve, cold_report = _swap_run(trainer, bundle, rewarm=False, seed=seed)
    series["hit-ratio/rewarm"] = [
        (float(j), h) for j, h in enumerate(warm_curve)
    ]
    series["hit-ratio/cold-swap"] = [
        (float(j), h) for j, h in enumerate(cold_curve)
    ]
    pre_swap = warm_curve[7]
    warm_drop = (pre_swap - warm_curve[8]) / pre_swap
    cold_drop = (pre_swap - cold_curve[8]) / pre_swap
    assert warm_drop <= 0.10, (
        f"re-warmed swap must hold the hit ratio within 10% of the "
        f"pre-swap window, dropped {warm_drop:.1%}"
    )
    assert cold_drop > warm_drop, (
        f"naive swap should cliff harder than the re-warmed one: "
        f"cold {cold_drop:.1%} vs rewarm {warm_drop:.1%}"
    )
    rows.append(warm_report.as_row())
    rows.append(cold_report.as_row())
    rows[-2][0] = "swap+rewarm"
    rows[-1][0] = "swap+cold"

    return ExperimentResult(
        experiment_id="serving-scale",
        title="Overload-robust serving: load sweep, faults, version swaps",
        headers=ServingReport.headers(),
        rows=rows,
        series=series,
        notes=(
            f"SLO {SLO * 1e3:g} ms; tenants {ADMISSION_SPEC}; asserted: "
            "monotone shed rate, p99-of-admitted within SLO past "
            f"saturation, retries metered under '{FAULT_SPEC}', and "
            f"re-warmed swap dip {warm_drop:.1%} <= 10% vs naive "
            f"{cold_drop:.1%}"
        ),
    )
