"""Negative-sampling study: uniform vs self-adversarial vs cached.

NSCaching's bet (arXiv:1812.06410, the sampler-side analogue of HET-KG's
hot embedding cache) is that a small per-key cache of hard negatives
carries most of the gradient signal, so a cached sampler with *few*
negatives per positive can match uniform corruption with *many* — while
paying only a bounded, hotness-ordered refresh bill.  This experiment
races four arms across model kernels on one dataset:

* **uniform** — ranking loss, 16 uniform corruptions per positive;
* **self-adv** — RotatE's self-adversarial loss, same uniform negatives
  (the softmax-weighting alternative that needs no cache state);
* **nscaching** — ranking loss, 4 negatives per positive drawn from the
  hard-negative cache (``neg_cache="nscaching"``);
* **auto** — the auto-balanced variant (``neg_cache="auto"``) annealing
  from exploration to exploitation.

Every arm trains the same schedule (same batches, same steps) on
HET-KG-D, so "scored candidates" — training forward passes plus the
cached arms' refresh scoring, all counted by
``TrainResult.scored_candidates`` — is directly comparable.  The series
section emits the MRR-vs-scored-candidates frontier per arm.

Asserted shape (with a default-scale run): both cached arms score
strictly fewer candidates than uniform, their refresh traffic is visible
as a nonzero ``"neg_cache"`` clock/CommRecord category, and (at >= 4
epochs, where convergence is meaningful) the best cached arm's mean MRR
across models reaches the uniform arm's.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    base_config,
    dataset_bundle,
    run_system,
)
from repro.experiments.parallel import parallel_map

#: Model kernels raced (a spread of geometries: translation, bilinear,
#: rotation — every kernel in repro.models accepts the same knobs).
NEG_MODELS = ("transe", "distmult", "rotate")

#: Sampler arms: label -> TrainingConfig overrides.
NEG_ARMS: dict[str, dict] = {
    "uniform": dict(num_negatives=16),
    "self-adv": dict(num_negatives=16, loss="self-adversarial"),
    "nscaching": dict(
        num_negatives=4,
        neg_cache="nscaching",
        neg_cache_size=8,
        neg_cache_pool=16,
        neg_cache_refresh=4,
        neg_cache_keys=48,
    ),
    "auto": dict(
        num_negatives=4,
        neg_cache="auto",
        neg_cache_size=8,
        neg_cache_pool=16,
        neg_cache_refresh=4,
        neg_cache_keys=48,
        neg_cache_anneal=128,
    ),
}

#: System hosting every arm (the flagship cached trainer, so refresh
#: traffic rides the same PS/network books as the embedding cache's).
NEG_SYSTEM = "hetkg-d"


def _run_cell(task: tuple[str, str, float, int, int]):
    """One (model, arm) training run (module-level: picklable)."""
    model, arm, scale, epochs, seed = task
    bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
    config = base_config(
        model=model, epochs=epochs, seed=seed, **NEG_ARMS[arm]
    )
    result = run_system(NEG_SYSTEM, config, bundle)
    return model, arm, result


def run_negative_sampling(
    scale: float = 0.05,
    epochs: int = 6,
    seed: int = 0,
    jobs: int = 1,
    neg_cache: str | None = None,
) -> ExperimentResult:
    """MRR-vs-scored-candidates frontier of the four sampler arms.

    ``neg_cache`` (the CLI ``--neg-cache`` passthrough) restricts the
    cached arms to one mode (``"nscaching"`` or ``"auto"``); ``"off"``
    drops both cached arms, leaving the uniform/self-adversarial race.
    ``jobs`` runs the (model x arm) grid on worker processes; the report
    is byte-identical to ``jobs=1``.
    """
    arms = list(NEG_ARMS)
    if neg_cache == "off":
        arms = [a for a in arms if a not in ("nscaching", "auto")]
    elif neg_cache in ("nscaching", "auto"):
        arms = [a for a in arms if a in ("uniform", "self-adv", neg_cache)]
    tasks = [
        (model, arm, scale, epochs, seed)
        for model in NEG_MODELS
        for arm in arms
    ]
    outcomes = parallel_map(_run_cell, tasks, jobs=jobs)

    rows = []
    mrr: dict[tuple[str, str], float] = {}
    scored: dict[tuple[str, str], int] = {}
    series: dict[str, list[tuple[float, float]]] = {}
    neg_time_total = 0.0
    refresh_bytes_total = 0
    for model, arm, result in outcomes:
        stats = result.neg_cache_stats
        mrr[(model, arm)] = result.final_metrics.get("mrr", 0.0)
        scored[(model, arm)] = result.scored_candidates
        neg_time_total += stats.get("neg_cache_time", 0.0)
        refresh_bytes_total += stats.get("refresh_bytes", 0)
        rows.append(
            [
                model,
                arm,
                result.final_metrics.get("mrr", 0.0),
                result.final_metrics.get("hits@10", 0.0),
                result.scored_candidates / 1e6,
                stats.get("hard_negatives_served", 0) / 1e3,
                stats.get("refresh_bytes", 0) / 1e6,
                stats.get("neg_cache_time", 0.0),
                result.sim_time,
            ]
        )
        series.setdefault(f"mrr-vs-scored/{arm}", []).append(
            (result.scored_candidates / 1e6, mrr[(model, arm)])
        )

    def mean_over_models(arm: str, table: dict) -> float:
        return sum(table[(m, arm)] for m in NEG_MODELS) / len(NEG_MODELS)

    cached_arms = [a for a in arms if a in ("nscaching", "auto")]
    notes: list[str] = []
    if cached_arms:
        # Structural invariants: the cache must actually run, pay for its
        # refreshes on the books, and still need fewer scored candidates
        # per step than uniform corruption (same step count per arm).
        assert neg_time_total > 0.0, "cached arms charged no neg_cache time"
        assert refresh_bytes_total > 0, "cached arms moved no refresh bytes"
        for arm in cached_arms:
            for model in NEG_MODELS:
                assert scored[(model, arm)] < scored[(model, "uniform")], (
                    f"{arm}/{model} scored {scored[(model, arm)]} candidates, "
                    f"not fewer than uniform's {scored[(model, 'uniform')]}"
                )
        uniform_mrr = mean_over_models("uniform", mrr)
        best_arm = max(cached_arms, key=lambda a: mean_over_models(a, mrr))
        best_mrr = mean_over_models(best_arm, mrr)
        ratio = sum(scored[(m, best_arm)] for m in NEG_MODELS) / sum(
            scored[(m, "uniform")] for m in NEG_MODELS
        )
        if epochs >= 4:
            # Convergence claims only make sense past the warm-up regime
            # (CI smoke cells run 1-2 epochs at tiny scale).
            assert best_mrr >= uniform_mrr, (
                f"expected a cached arm to reach uniform's mean MRR: best "
                f"cached ({best_arm}) {best_mrr:.4f} < uniform {uniform_mrr:.4f}"
            )
        notes.append(
            f"best cached arm ({best_arm}) mean MRR {best_mrr:.4f} vs "
            f"uniform {uniform_mrr:.4f} at {ratio:.2f}x the scored "
            f"candidates (hard negatives carry the gradient signal)"
        )
        notes.append(
            f"refresh bill across cached cells: {refresh_bytes_total / 1e6:.1f} "
            f"MB pulled, {neg_time_total:.3f}s simulated under the "
            f"'neg_cache' category — the cache pays rent on the same books "
            "as the embedding cache"
        )
    else:
        notes.append("cached arms disabled (neg_cache=off passthrough)")

    return ExperimentResult(
        experiment_id="negative-sampling",
        title=(
            "Negative sampling: uniform vs self-adversarial vs "
            "hotness-cached (NSCaching-style)"
        ),
        headers=[
            "model",
            "sampler",
            "MRR",
            "Hits@10",
            "scored (M)",
            "hard served (K)",
            "refresh MB",
            "neg time (s)",
            "sim time (s)",
        ],
        rows=rows,
        notes="; ".join(notes),
        series=series,
    )
