"""Experiment runners — one per table/figure of the paper's §VI.

Every runner returns an :class:`repro.experiments.common.ExperimentResult`
whose rows mirror the paper's table columns (or a figure's series), so
``python -m repro run <experiment>`` regenerates any result.  The registry
in :mod:`repro.experiments.registry` maps paper ids to runners.
"""

from repro.experiments.common import ExperimentResult, base_config, dataset_bundle
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.sweep import SweepResult, run_sweep

__all__ = [
    "ExperimentResult",
    "base_config",
    "dataset_bundle",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "SweepResult",
    "run_sweep",
]
