"""Memory-tiering study: oversubscribed embedding tables (repro.tier).

Every other experiment in this repo keeps its tables resident, which is
why "Freebase-86m" runs scaled down 1000x.  This experiment turns the
scaling knob the other way: the full-skew Freebase generator is *upscaled*
past two million entities and the entity table is served through the
tiered store (:mod:`repro.tier`) under byte budgets holding far less than
25% of rows resident.

Three legs:

* **gather sweep** — replay every triple's head/tail gathers through a
  :class:`~repro.tier.runtime.TierRuntime` at several resident fractions;
  the steady-state hot hit ratio per fraction is the paper-style
  hit-rate vs resident-fraction curve.  Under Zipf skew a small budget
  should absorb *most* traffic (the HET-KG/HMEM-Cache bet).
* **block-size sweep** — the same traffic at one budget with coarser
  residency blocks.  The generator permutes hotness across ids, so large
  blocks average hot rows with cold neighbours and the hit ratio drops:
  the locality penalty that makes ``tier_block_rows`` a real knob.
* **training leg** — a small tiered training run: unlimited budget +
  exact cold codec must be bit-identical to the resident trainer, and an
  oversubscribed run surfaces its ``memory_report()`` in the table.

The default ``scale=23.3`` puts the generator at ~2.005M entities; CI
runs the same code at a tiny scale (skew assertions are gated on table
size, everything else still executes).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.telemetry import Telemetry
from repro.core.trainer import make_trainer
from repro.experiments.common import (
    ExperimentResult,
    base_config,
    dataset_bundle,
)
from repro.kg.datasets import FREEBASE86M_SPEC, generate_dataset
from repro.kg.graph import HEAD, TAIL
from repro.tier import TierConfig, TierPolicy, TierRuntime, format_bytes
from repro.utils.rng import make_rng

#: Resident-fraction sweep points (all < 25% of the entity table).
RESIDENT_FRACTIONS = (0.05, 0.10, 0.25)

#: Block sizes for the locality sweep (rows per residency block).
SWEEP_BLOCK_ROWS = (8, 64)

#: Residency block used for the fraction sweep.
CURVE_BLOCK_ROWS = 8

#: Entity ids gathered per replay batch (a serving/training batch shape).
GATHER_BATCH = 8192

#: Embedding width of the gather-leg table (kept modest so the 2M-entity
#: table is a ~256 MB logical footprint on one box).
GATHER_WIDTH = 16

#: Entity-table size above which the skew assertions are enforced.
SKEW_ASSERT_MIN_ENTITIES = 100_000


def freebase_spec(scale: float):
    """The upscaled Freebase spec, bounded for single-core generation.

    ``scaled`` alone would also upscale the community count (via
    ``sqrt(num_entities)``) and the triple count linearly; both drive the
    generator's structured-tail bookkeeping superlinearly.  The overrides
    keep hotness skew intact while pinning the community/relation
    vocabularies and capping triples at ~2.3x the entity count.  The cap
    must stay well above 1x: the generator's entity-coverage chain has
    *uniform* heads, so a cap near the entity count would make uniform
    traffic dominate and flatten the very skew this experiment measures.
    """
    spec = FREEBASE86M_SPEC.scaled(scale)
    return replace(
        spec,
        num_communities=min(256, spec.communities),
        num_relations=min(spec.num_relations, 96),
        num_triples=min(spec.num_triples, int(spec.num_entities * 2.3) + 64),
    )


def _entity_traffic(graph) -> np.ndarray:
    """Head/tail ids in triple order — the gather stream a trainer issues."""
    ids = np.empty(2 * graph.num_triples, dtype=np.int64)
    ids[0::2] = graph.triples[:, HEAD]
    ids[1::2] = graph.triples[:, TAIL]
    return ids


def _replay(table, ids: np.ndarray) -> None:
    for lo in range(0, len(ids), GATHER_BATCH):
        table.read(ids[lo : lo + GATHER_BATCH])


def _measure_fraction(
    entity_table: np.ndarray,
    traffic: np.ndarray,
    fraction: float,
    block_rows: int,
) -> dict:
    """Steady-state tier behaviour for one (budget, block size) point.

    The first replay warms the membership (counting passes promote the
    hot set); the hit ratio is then measured over a second full replay,
    so cold-start warm misses do not depress the curve.
    """
    logical = entity_table.nbytes
    budget = max(block_rows * entity_table.shape[1] * 8 + 1, int(fraction * logical))
    policy = TierPolicy(
        block_rows=block_rows,
        pass_rows=min(262_144, max(1024, len(traffic) // 8)),
        target_hit_rate=1.0,  # always adapt; the curve wants convergence
        max_evict_per_pass=4096,
    )
    runtime = TierRuntime(
        {"entity": entity_table}, TierConfig(budget=budget, policy=policy)
    )
    table = runtime.tables["entity"]
    try:
        _replay(table, traffic)  # warm-up: build the hot membership
        table.rebalance()
        base = table.stats
        hot0, access0 = base.hot_rows, base.accesses
        _replay(table, traffic)  # measured steady-state pass
        steady_hit = (table.stats.hot_rows - hot0) / max(
            1, table.stats.accesses - access0
        )
        table.rebalance()
        resident = table.resident_bytes()
        assert resident <= budget, (
            f"resident {resident}B exceeds budget {budget}B "
            f"at fraction {fraction}"
        )
        return {
            "fraction": fraction,
            "block_rows": block_rows,
            "budget": budget,
            "resident": resident,
            "hot_fraction": table.hot_fraction(),
            "steady_hit": steady_hit,
            "tier_seconds": runtime.clock.elapsed,
            "passes": table.stats.passes,
            "cold_blocks": table.report()["cold_blocks"],
        }
    finally:
        runtime.close()


def _train_leg(epochs: int, seed: int) -> list[dict]:
    """Small-scale training through the tiered backing.

    Fixed tiny scale regardless of the gather-leg scale: the point is the
    backing contract (bit-identity unlimited, budget respected when
    oversubscribed), not training throughput at 2M entities.
    """
    bundle = dataset_bundle("fb15k", scale=0.012, seed=seed)
    config = base_config(
        dim=8,
        epochs=epochs,
        batch_size=64,
        num_negatives=4,
        num_machines=2,
        cache_capacity=256,
        sync_period=4,
        seed=seed,
    )
    resident = make_trainer("hetkg-d", config)
    res = resident.train(bundle.split.train)

    exact = make_trainer(
        "hetkg-d",
        config.with_overrides(
            backing="tiered", tier_cold_codec="none", tier_block_rows=32
        ),
    )
    ex = exact.train(bundle.split.train)
    identical = all(
        np.array_equal(
            np.asarray(resident.server.store.table(kind)),
            np.asarray(exact.server.store.table(kind)),
        )
        for kind in ("entity", "relation")
    ) and res.sim_time == ex.sim_time
    assert identical, "tiered backing with unlimited budget diverged from resident"
    exact.server.store.close()

    telemetry = Telemetry()
    budget = "24K"
    tight = make_trainer(
        "hetkg-d",
        config.with_overrides(
            backing="tiered", memory_budget=budget, tier_block_rows=16
        ),
    )
    tight_result = tight.train(bundle.split.train, telemetry=telemetry)
    report = telemetry.latest_memory()
    assert report["backing"] == "tiered"
    assert report["resident_bytes"] <= report["budget_bytes"]
    tight.server.store.close()

    ent = report["tables"]["entity"]
    return [
        {
            "leg": "train",
            "setting": "unlimited, codec=none",
            "entities": bundle.graph.num_entities,
            "budget": "unlimited",
            "resident": format_bytes(res.memory_report["resident_bytes"])
            if res.memory_report
            else "all",
            "hit": ex.memory_report["tables"]["entity"]["hit_ratio"],
            "tier_seconds": ex.tier_time,
            "note": "bit-identical to resident",
        },
        {
            "leg": "train",
            "setting": f"budget={budget}, block=16",
            "entities": bundle.graph.num_entities,
            "budget": format_bytes(report["budget_bytes"]),
            "resident": format_bytes(report["resident_bytes"]),
            "hit": ent["hit_ratio"],
            "tier_seconds": tight_result.tier_time,
            "note": f"MRR tracked; {ent['passes']} passes",
        },
    ]


def run_memory_tiering(
    scale: float = 23.3, epochs: int = 2, seed: int = 0
) -> ExperimentResult:
    """Hit-rate vs resident-fraction curves for the tiered store.

    ``scale`` multiplies :data:`FREEBASE86M_SPEC` — the default lands at
    ~2.005M entities (a ~256 MB logical entity table at width 16) served
    under budgets of 5/10/25% resident.
    """
    spec = freebase_spec(scale)
    graph = generate_dataset(spec, seed=seed)
    traffic = _entity_traffic(graph)
    entity_table = make_rng(seed + 1).normal(
        0.0, 1.0, size=(graph.num_entities, GATHER_WIDTH)
    )

    rows: list[list] = []
    curve: list[tuple[float, float]] = []
    sweep_points: list[dict] = []
    for fraction in RESIDENT_FRACTIONS:
        point = _measure_fraction(entity_table, traffic, fraction, CURVE_BLOCK_ROWS)
        sweep_points.append(point)
        curve.append((fraction, point["steady_hit"]))
        rows.append(
            [
                "gather",
                f"f={fraction:.2f} block={CURVE_BLOCK_ROWS}",
                graph.num_entities,
                format_bytes(point["budget"]),
                format_bytes(point["resident"]),
                point["steady_hit"],
                point["tier_seconds"],
                f"{point['passes']} passes, {point['cold_blocks']} cold blocks",
            ]
        )

    block_curve: list[tuple[float, float]] = []
    for block_rows in SWEEP_BLOCK_ROWS:
        point = _measure_fraction(entity_table, traffic, 0.10, block_rows)
        block_curve.append((float(block_rows), point["steady_hit"]))
        rows.append(
            [
                "block-sweep",
                f"f=0.10 block={block_rows}",
                graph.num_entities,
                format_bytes(point["budget"]),
                format_bytes(point["resident"]),
                point["steady_hit"],
                point["tier_seconds"],
                "",
            ]
        )

    hits = [hit for _, hit in curve]
    assert all(b >= a - 1e-9 for a, b in zip(hits, hits[1:])), (
        f"hit ratio must not decrease with budget: {curve}"
    )
    skew_note = "skew assertions skipped (tiny table)"
    if graph.num_entities >= SKEW_ASSERT_MIN_ENTITIES:
        top = dict(zip(RESIDENT_FRACTIONS, hits))
        assert top[0.25] > 2 * 0.25, (
            f"Zipf skew should make 25% residency absorb >50% of traffic, "
            f"got {top[0.25]:.3f}"
        )
        assert block_curve[0][1] > block_curve[-1][1], (
            f"coarse blocks should dilute skew: {block_curve}"
        )
        skew_note = (
            f"asserted: hit@25% = {top[0.25]:.3f} > 2x resident fraction; "
            f"block={SWEEP_BLOCK_ROWS[0]} beats block={SWEEP_BLOCK_ROWS[-1]} "
            "at equal budget"
        )

    for entry in _train_leg(epochs, seed):
        rows.append(
            [
                entry["leg"],
                entry["setting"],
                entry["entities"],
                entry["budget"],
                entry["resident"],
                entry["hit"],
                entry["tier_seconds"],
                entry["note"],
            ]
        )

    return ExperimentResult(
        experiment_id="memory-tiering",
        title=f"Tiered store oversubscription ({graph.num_entities:,} entities)",
        headers=[
            "leg",
            "setting",
            "entities",
            "budget",
            "resident",
            "hit ratio",
            "tier time (s)",
            "note",
        ],
        rows=rows,
        series={
            "hit-rate vs resident fraction": curve,
            "hit-rate vs block rows (f=0.10)": block_curve,
        },
        notes=(
            "steady-state hit ratio measured over a full second replay after "
            "a warm-up replay; resident bytes asserted <= budget after every "
            f"final pass. {skew_note}. Training leg: unlimited-budget tiered "
            "run asserted bit-identical to the resident trainer."
        ),
    )
