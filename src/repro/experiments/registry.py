"""Registry mapping paper experiment ids to runner functions."""

from __future__ import annotations

from typing import Callable

from repro.experiments.ablations import (
    run_ablation_compression,
    run_model_zoo,
    run_ablation_dps_window,
    run_ablation_negatives,
    run_ablation_partition,
)
from repro.experiments.accuracy import run_table3, run_table4, run_table5
from repro.experiments.cache_shootout import run_cache_shootout
from repro.experiments.cache_study import (
    run_fig8a,
    run_fig8b,
    run_fig8c,
    run_fig9,
    run_policies_extended,
    run_table6,
    run_table7,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.efficiency import run_fig5, run_fig6, run_fig7
from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.experiments.memory_tiering import run_memory_tiering
from repro.experiments.microbench import run_fig2, run_table1, run_table2
from repro.experiments.negative_sampling import run_negative_sampling
from repro.experiments.serving_scale import run_serving_scale
from repro.experiments.serving_study import run_serving_batcher, run_serving_cache
from repro.experiments.streaming_drift import run_streaming_drift

#: Every reproducible table/figure, keyed by the paper's numbering.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "fig2": run_fig2,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig8c": run_fig8c,
    "fig9": run_fig9,
    "table6": run_table6,
    "table7": run_table7,
    "ablation-partition": run_ablation_partition,
    "ablation-negatives": run_ablation_negatives,
    "ablation-dps-window": run_ablation_dps_window,
    "ablation-compression": run_ablation_compression,
    "ablation-policies-extended": run_policies_extended,
    "ablation-model-zoo": run_model_zoo,
    "serving-cache": run_serving_cache,
    "serving-batcher": run_serving_batcher,
    "serving-scale": run_serving_scale,
    "fault-tolerance": run_fault_tolerance,
    "streaming-drift": run_streaming_drift,
    "memory-tiering": run_memory_tiering,
    "cache-shootout": run_cache_shootout,
    "negative-sampling": run_negative_sampling,
}


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    """Look up a runner by id (e.g. ``"table3"``)."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def list_experiments() -> list[str]:
    """All experiment ids, tables/figures first, ablations last."""
    return sorted(EXPERIMENTS)
