"""Shared plumbing for the experiment runners.

Each paper experiment needs the same ingredients: a dataset at some scale,
a shared hyperparameter config, the four systems, and a way to render
results.  This module provides all of them so individual runners stay a
few dozen lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TrainingConfig
from repro.core.trainer import TrainResult, make_trainer
from repro.kg.datasets import generate_dataset
from repro.kg.graph import KnowledgeGraph
from repro.kg.splits import Split, split_triples
from repro.utils.tables import format_table

#: Display names matching the paper's tables.
SYSTEM_LABELS = {
    "pbg": "PBG",
    "dglke": "DGL-KE",
    "hetkg-c": "HET-KG-C",
    "hetkg-d": "HET-KG-D",
    "hetkg-a": "HET-KG-A",
}

#: The systems of Tables III-V, in the paper's row order.
ALL_SYSTEMS = ("pbg", "dglke", "hetkg-c", "hetkg-d")


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    ``rows`` are the table rows (paper tables) and ``series`` holds named
    (x, y) curves (paper figures).  ``to_text`` renders both.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def to_text(self, precision: int = 3) -> str:
        parts = [
            format_table(
                self.headers,
                self.rows,
                title=f"[{self.experiment_id}] {self.title}",
                precision=precision,
            )
        ]
        for name, points in self.series.items():
            rendered = ", ".join(f"({x:.3g}, {y:.3g})" for x, y in points)
            parts.append(f"series {name}: {rendered}")
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)


@dataclass
class DatasetBundle:
    """A generated dataset with its split and filter set."""

    name: str
    graph: KnowledgeGraph
    split: Split
    filter_set: set[tuple[int, int, int]]


_BUNDLE_CACHE: dict[tuple[str, float, int], DatasetBundle] = {}


def dataset_bundle(name: str, scale: float = 1.0, seed: int = 0) -> DatasetBundle:
    """Generate (and memoise) a dataset plus its 90/5/5 split."""
    key = (name, scale, seed)
    if key not in _BUNDLE_CACHE:
        graph = generate_dataset(name, scale=scale)
        split = split_triples(graph, seed=seed)
        _BUNDLE_CACHE[key] = DatasetBundle(
            name=name,
            graph=graph,
            split=split,
            filter_set=graph.triple_set(),
        )
    return _BUNDLE_CACHE[key]


def base_config(**overrides) -> TrainingConfig:
    """The shared hyperparameter set of the evaluation section.

    Mirrors Table II at simulation scale: AdaGrad lr 0.1, chunked negative
    sampling, 4 machines, METIS partitioning, wire dimension 400.  Cache
    parameters default to the paper's best configuration (25% entities,
    P = 8).
    """
    defaults = dict(
        model="transe",
        dim=16,
        lr=0.1,
        batch_size=128,
        num_negatives=16,
        negative_chunk=16,
        epochs=6,
        num_machines=4,
        cache_capacity=1024,
        entity_ratio=0.25,
        sync_period=8,
        dps_window=16,
        seed=0,
    )
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def run_system(
    system: str,
    config: TrainingConfig,
    bundle: DatasetBundle,
    eval_max_queries: int = 150,
    eval_candidates: int | None = 500,
    eval_every: int | None = None,
) -> TrainResult:
    """Train one system on one dataset bundle and return its result."""
    trainer = make_trainer(system, config)
    return trainer.train(
        bundle.split.train,
        eval_graph=bundle.split.test,
        filter_set=bundle.filter_set,
        eval_every=eval_every,
        eval_max_queries=eval_max_queries,
        eval_candidates=eval_candidates,
    )


def link_prediction_rows(
    systems: tuple[str, ...],
    config: TrainingConfig,
    bundle: DatasetBundle,
    model: str,
    eval_max_queries: int = 150,
    eval_candidates: int | None = 500,
) -> list[list]:
    """Rows of a Tables III-V style comparison for one model."""
    rows = []
    for system in systems:
        result = run_system(
            system,
            config.with_overrides(model=model),
            bundle,
            eval_max_queries=eval_max_queries,
            eval_candidates=eval_candidates,
        )
        rows.append(
            [
                SYSTEM_LABELS[system],
                model,
                result.final_metrics.get("mrr", 0.0),
                result.final_metrics.get("hits@1", 0.0),
                result.final_metrics.get("hits@10", 0.0),
                result.sim_time,
            ]
        )
    return rows
