"""Cache shootout: every policy in the unified core on every trace class.

The payoff of folding the repo's five cache engines into
:mod:`repro.cache.core`: reactive eviction policies (FIFO/LRU/LFU/CLOCK/
2Q/ARC) and the paper's prefetch-based membership strategies
(CPS/DPS/ADAPTIVE) race on the *same* engine, same ledger, same hit
metering — so a hit-ratio difference is the policy and nothing else.

Three trace classes stress three regimes:

* **static** — a one-epoch training pull trace (the Table VI setting):
  a stationary Zipf-skewed access stream.  Foresight (DPS) wins; CPS is
  close behind because the distribution never moves.
* **drift** — a synthetic rotating-Zipf stream whose hot set is
  re-permuted every phase.  CPS's one-shot membership goes stale, the
  reactive policies re-learn with a lag, DPS re-tracks each window, and
  ADAPTIVE reacts at half-window granularity.
* **serving** — a Zipfian inference query log (entities + offset
  relations), the :mod:`repro.serving` workload shape.

Every cell also audits the central capacity invariant: the resident
count reported by the core must never exceed the capacity (the ledger
raises :class:`~repro.cache.core.CapacityError` otherwise — this is the
invariant the pre-core 2Q and serving-split bugs violated).

Runnable under ``--jobs``; the report is byte-identical to the serial
run (every cell is an independent seeded replay).
"""

from __future__ import annotations

import numpy as np

from repro.cache.core import make_cache, replay_membership_trace
from repro.experiments.common import (
    ExperimentResult,
    base_config,
    dataset_bundle,
)
from repro.experiments.cache_study import _access_trace
from repro.experiments.parallel import parallel_map
from repro.serving.workload import WorkloadSpec, ZipfianWorkload, zipf_probabilities

#: Reactive policies (registry names in repro.cache.core).
REACTIVE_POLICIES = ("fifo", "lru", "lfu", "clock", "2q", "arc")

#: Prefetch-based membership strategies (HotnessMembershipCache modes).
HOTNESS_MODES = ("cps", "dps", "adaptive")

#: Trace classes the shootout replays.
TRACES = ("static", "drift", "serving")

#: Cache capacity as a fraction of each trace's key vocabulary.
CAPACITY_FRACTION = 0.1

#: DPS/ADAPTIVE window, in batches (matches the Table VI dps_window).
WINDOW = 8


def _drift_trace(
    seed: int,
    vocab: int = 400,
    phases: int = 4,
    batches_per_phase: int = 30,
    batch_size: int = 32,
) -> list[np.ndarray]:
    """Rotating-Zipf access stream: the hot set moves every phase.

    Each phase draws Zipf-skewed ranks and maps them through a fresh
    random permutation of the key space, so which keys are hot rotates
    wholesale while the skew itself stays constant — the same workload
    shape as the streaming subsystem's ``rotation`` profile, but as a
    pure trace (no training loop).
    """
    rng = np.random.default_rng([seed, 421])
    probs = zipf_probabilities(vocab, 1.1)
    batches = []
    for _ in range(phases):
        perm = rng.permutation(vocab)
        for _ in range(batches_per_phase):
            ranks = rng.choice(vocab, size=batch_size, p=probs)
            batches.append(perm[ranks].astype(np.int64))
    return batches


def _serving_trace(
    bundle, seed: int, num_queries: int = 1500, batch_size: int = 32
) -> list[np.ndarray]:
    """Zipfian query-log trace over the unified entity+relation key space."""
    workload = ZipfianWorkload.from_graph(
        bundle.graph, WorkloadSpec(num_queries=num_queries, seed=seed)
    )
    log = workload.generate()
    offset = bundle.graph.num_entities
    batches = []
    for start in range(0, len(log.queries), batch_size):
        chunk = log.queries[start : start + batch_size]
        batches.append(
            np.concatenate(
                [
                    np.concatenate(
                        [q.entity_ids(), q.relation_ids() + offset]
                    )
                    for q in chunk
                ]
            ).astype(np.int64)
        )
    return batches


def _trace_and_capacity(
    trace_name: str, scale: float, seed: int
) -> tuple[list[np.ndarray], int]:
    """Build one trace class plus its vocabulary-proportional capacity."""
    if trace_name == "static":
        bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
        config = base_config(seed=seed, batch_size=32, num_negatives=8)
        batches, _ = _access_trace(bundle, config, seed)
        vocab = bundle.graph.num_entities + bundle.graph.num_relations
    elif trace_name == "drift":
        batches = _drift_trace(seed)
        vocab = 400
    elif trace_name == "serving":
        bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
        batches = _serving_trace(bundle, seed)
        vocab = bundle.graph.num_entities + bundle.graph.num_relations
    else:  # pragma: no cover - guarded by the task grid
        raise ValueError(f"unknown trace {trace_name!r}")
    return batches, max(4, int(vocab * CAPACITY_FRACTION))


def _run_cell(task: tuple[str, str, float, int]):
    """One (trace, policy) replay (module-level: picklable)."""
    trace_name, policy, scale, seed = task
    batches, capacity = _trace_and_capacity(trace_name, scale, seed)
    if policy in HOTNESS_MODES:
        hit_ratio = replay_membership_trace(
            batches, capacity, mode=policy, window=WINDOW
        )
        resident = capacity  # membership caches install up to capacity
    else:
        core = make_cache(policy, capacity)
        for batch in batches:
            for key in batch:
                core.access(int(key))
        hit_ratio = core.hit_ratio
        resident = len(core)
        assert resident <= capacity, (policy, resident, capacity)
    return trace_name, policy, hit_ratio, capacity


def run_cache_shootout(
    scale: float = 0.05,
    seed: int = 0,
    jobs: int = 1,
) -> ExperimentResult:
    """Hit ratio of every registered policy on every trace class.

    ``jobs`` replays the (trace x policy) grid on worker processes; the
    report is byte-identical to ``jobs=1`` (every cell is an independent
    seeded replay).
    """
    policies = REACTIVE_POLICIES + HOTNESS_MODES
    tasks = [
        (trace, policy, scale, seed)
        for trace in TRACES
        for policy in policies
    ]
    outcomes = parallel_map(_run_cell, tasks, jobs=jobs)

    hit: dict[tuple[str, str], float] = {}
    capacities: dict[str, int] = {}
    for trace_name, policy, hit_ratio, capacity in outcomes:
        hit[(trace_name, policy)] = hit_ratio
        capacities[trace_name] = capacity

    rows = [
        [trace] + [hit[(trace, policy)] for policy in policies]
        for trace in TRACES
    ]

    # The shapes the unified engine must reproduce: prefetch foresight
    # (DPS) beats every reactive policy on the stationary trace, and
    # under rotation the one-shot CPS membership falls behind both DPS
    # and the drift-triggered ADAPTIVE.
    best_reactive = max(hit[("static", p)] for p in REACTIVE_POLICIES)
    assert hit[("static", "dps")] > best_reactive, (
        "expected DPS foresight to beat every reactive policy on the "
        f"stationary trace: dps={hit[('static', 'dps')]:.3f} vs best "
        f"reactive {best_reactive:.3f}"
    )
    assert hit[("drift", "dps")] > hit[("drift", "cps")], (
        "expected CPS to fall behind DPS under hot-set rotation: "
        f"cps={hit[('drift', 'cps')]:.3f} dps={hit[('drift', 'dps')]:.3f}"
    )
    assert hit[("drift", "adaptive")] > hit[("drift", "cps")], (
        "expected ADAPTIVE to beat CPS under hot-set rotation: "
        f"cps={hit[('drift', 'cps')]:.3f} "
        f"adaptive={hit[('drift', 'adaptive')]:.3f}"
    )

    capacity_note = ", ".join(
        f"{trace}={capacities[trace]}" for trace in TRACES
    )
    return ExperimentResult(
        experiment_id="cache-shootout",
        title="Unified-core cache shootout: reactive policies vs CPS/DPS/ADAPTIVE",
        headers=["trace"] + list(policies),
        rows=rows,
        notes=(
            "hit ratio per (trace, policy); every policy runs on the same "
            "repro.cache.core engine with ledger-enforced capacity "
            f"(capacities: {capacity_note}). asserted: DPS > all reactive "
            "policies on the stationary trace; DPS and ADAPTIVE > CPS "
            "under hot-set rotation."
        ),
    )
