"""Cache-focused studies: Fig. 8 (cache size, staleness, entity ratio),
Fig. 9 (staleness convergence curves), Table VI (policy comparison), and
Table VII (heterogeneity-aware filtering ablation)."""

from __future__ import annotations

import numpy as np

from repro.cache.optimal import belady_hit_ratio
from repro.cache.policies import (
    ARCCache,
    ClockCache,
    FIFOCache,
    LFUCache,
    LRUCache,
    ImportanceCache,
    TwoQueueCache,
    hotness_window_hit_ratio,
    replay_trace,
)
from repro.experiments.common import (
    ExperimentResult,
    base_config,
    dataset_bundle,
    run_system,
)
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import NegativeSampler
from repro.utils.rng import make_rng


def run_fig8a(
    scale: float = 0.1,
    epochs: int = 3,
    seed: int = 0,
    capacities: tuple[int, ...] = (64, 256, 1024, 4096),
) -> ExperimentResult:
    """Fig. 8(a): cache size vs hit ratio and MRR on Freebase-86m.

    Paper shape: hit ratio rises with cache size and saturates; MRR is
    essentially unaffected (staleness error stays small).
    """
    bundle = dataset_bundle("freebase86m-mini", scale=scale, seed=seed)
    rows = []
    series = {"hit_ratio": [], "mrr": []}
    for capacity in capacities:
        config = base_config(epochs=epochs, seed=seed, cache_capacity=capacity)
        result = run_system("hetkg-d", config, bundle, eval_max_queries=100)
        mrr = result.final_metrics.get("mrr", 0.0)
        rows.append([capacity, result.cache_hit_ratio, mrr, result.sim_time])
        series["hit_ratio"].append((float(capacity), result.cache_hit_ratio))
        series["mrr"].append((float(capacity), mrr))
    return ExperimentResult(
        experiment_id="fig8a",
        title="Impact of cache size (HET-KG-D, freebase86m-mini)",
        headers=["cache size", "hit ratio", "MRR", "time (s)"],
        rows=rows,
        series=series,
        notes="paper: hit ratio rises then saturates; MRR ~flat",
    )


def run_fig8b(
    scale: float = 0.1,
    epochs: int = 4,
    seed: int = 0,
    staleness: tuple[int, ...] = (1, 2, 4, 8, 32, 128),
    seeds: int = 2,
) -> ExperimentResult:
    """Fig. 8(b): staleness bound P vs performance and MRR.

    Paper shape: MRR is stable for P <= 8 and degrades beyond; training
    time falls as P grows (fewer synchronizations).

    As in :func:`run_fig9`, the accuracy penalty of staleness needs the
    high-pressure configuration (8 workers, 3x learning rate) and
    seed-averaged MRR to rise above noise at simulation scale; times come
    from the first seed.
    """
    bundle = dataset_bundle("freebase86m-mini", scale=scale, seed=seed)
    rows = []
    series = {"mrr": [], "time": []}
    for p in staleness:
        finals = []
        for s in range(seeds):
            config = base_config(
                epochs=epochs,
                seed=seed + s,
                sync_period=p,
                num_machines=8,
                cache_capacity=4096,
                lr=0.3,
            )
            result_s = run_system(
                "hetkg-c", config, bundle, eval_max_queries=200
            )
            finals.append(result_s.final_metrics.get("mrr", 0.0))
            if s == 0:
                result = result_s
        mrr = float(np.mean(finals))
        rows.append([p, mrr, result.sim_time, result.communication_time])
        series["mrr"].append((float(p), mrr))
        series["time"].append((float(p), result.sim_time))
    return ExperimentResult(
        experiment_id="fig8b",
        title="Impact of bounded staleness P (HET-KG-C, freebase86m-mini)",
        headers=["staleness P", "MRR", "time (s)", "comm time (s)"],
        rows=rows,
        series=series,
        notes="paper: MRR stable for P<=8, lower at large P; time falls with P",
    )


def run_fig8c(
    scale: float = 0.1,
    epochs: int = 2,
    seed: int = 0,
    ratios: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0),
) -> ExperimentResult:
    """Fig. 8(c): entity share of the cache vs hit ratio.

    Paper shape: hit ratio peaks at a *low* entity ratio (~25%) because
    relation embeddings are accessed far more densely.

    The cache is sized at half the relation vocabulary so the trade-off is
    real: neither side can be fully cached, mirroring the paper's regime
    where Freebase-86m's 14,824 relations exceed the per-worker cache.
    """
    bundle = dataset_bundle("freebase86m-mini", scale=scale, seed=seed)
    capacity = max(16, bundle.graph.num_relations // 2)
    rows = []
    series = {"hit_ratio": []}
    for ratio in ratios:
        config = base_config(
            epochs=epochs, seed=seed, entity_ratio=ratio, cache_capacity=capacity
        )
        result = run_system("hetkg-d", config, bundle, eval_max_queries=1)
        rows.append([ratio, result.cache_hit_ratio, result.sim_time])
        series["hit_ratio"].append((ratio, result.cache_hit_ratio))
    return ExperimentResult(
        experiment_id="fig8c",
        title="Impact of entity ratio in the cache (HET-KG-D)",
        headers=["entity ratio", "hit ratio", "time (s)"],
        rows=rows,
        series=series,
        notes="paper: hit ratio peaks near 25% entities / 75% relations",
    )


def run_fig9(
    scale: float = 0.1,
    epochs: int = 8,
    seed: int = 0,
    staleness: tuple[int, ...] = (1, 128),
    seeds: int = 3,
) -> ExperimentResult:
    """Fig. 9: epoch-MRR curves under tight vs loose consistency.

    Paper shape: staleness 1 converges to a clearly higher MRR than
    staleness 128 (0.67 vs 0.59 on Freebase-86m), motivating the bounded
    synchronization.

    Delayed-gradient damage scales with effective step size, so at
    simulation scale the penalty only emerges under pressure: this runner
    uses 8 workers, a large cache, and a 3x learning rate, and averages
    the final MRR over ``seeds`` seeds (single runs are noise-dominated).
    The curves come from the first seed.
    """
    bundle = dataset_bundle("freebase86m-mini", scale=scale, seed=seed)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for p in staleness:
        finals = []
        for s in range(seeds):
            config = base_config(
                epochs=epochs,
                seed=seed + s,
                sync_period=p,
                num_machines=8,
                cache_capacity=4096,
                lr=0.3,
            )
            result = run_system(
                "hetkg-c",
                config,
                bundle,
                eval_every=2 if s == 0 else None,
                eval_max_queries=200,
            )
            finals.append(result.final_metrics.get("mrr", 0.0))
            if s == 0:
                epochs_x, mrrs = result.history.epoch_series("mrr")
                series[f"staleness={p}"] = [
                    (float(e), m) for e, m in zip(epochs_x, mrrs)
                ]
        rows.append([p, float(np.mean(finals))])
    return ExperimentResult(
        experiment_id="fig9",
        title=f"Epoch-MRR under tight vs loose consistency (mean of {seeds} seeds)",
        headers=["staleness P", "final MRR (mean)"],
        rows=rows,
        series=series,
        notes=(
            "paper: MRR 0.67 at staleness 1 vs 0.59 at 128; at simulation "
            "scale the penalty is a few percent and needs seed-averaging"
        ),
    )


# --------------------------------------------------------------- Table VI


def _access_trace(
    bundle, config, seed: int
) -> tuple[list[np.ndarray], dict[int, float]]:
    """One epoch's per-batch *pull* trace plus structural importance.

    A worker pulls each embedding once per batch regardless of how many
    triples reuse it, so the trace records each batch's unique ids.
    Entities keep their ids; relations are offset by ``num_entities`` so
    both kinds share one key space, mirroring a unified cache.  Importance
    (for the static importance cache) is entity degree / relation
    frequency — what is knowable before training.
    """
    graph = bundle.split.train
    rng = make_rng(seed)
    neg = NegativeSampler(
        num_entities=graph.num_entities,
        num_negatives=config.num_negatives,
        strategy=config.negative_strategy,
        chunk_size=config.negative_chunk,
        seed=rng,
    )
    sampler = EpochSampler(graph, config.batch_size, neg, seed=rng)
    offset = graph.num_entities
    batches = []
    for batch in sampler.epoch():
        batches.append(
            np.concatenate(
                [batch.unique_entities(), batch.unique_relations() + offset]
            )
        )
    importance = {
        int(e): float(d) for e, d in enumerate(graph.entity_degrees())
    }
    for r, c in enumerate(graph.relation_counts()):
        importance[offset + int(r)] = float(c)
    return batches, importance


def run_table6(
    scale: float = 0.05,
    seed: int = 0,
    capacity_fraction: float = 0.1,
) -> ExperimentResult:
    """Table VI: hit ratio of HET-KG's hotness cache vs FIFO/LRU/importance.

    All policies replay the identical one-epoch access trace with the same
    capacity.  The HET-KG column is the DPS oracle-window cache (top-k of
    each prefetched window).  Paper shape: HET-KG > importance > LRU >
    FIFO on every dataset.

    The trace uses the paper's small-batch setting (b = 32) so the cache
    capacity is comfortably larger than one batch's working set — the
    regime in which recency caches retain anything at all.
    """
    config = base_config(seed=seed, batch_size=32, num_negatives=8)
    rows = []
    for dataset in ("fb15k", "wn18", "freebase86m-mini"):
        bundle = dataset_bundle(dataset, scale=scale, seed=seed)
        batches, importance = _access_trace(bundle, config, seed)
        flat = np.concatenate(batches)
        vocabulary = bundle.graph.num_entities + bundle.graph.num_relations
        capacity = max(4, int(vocabulary * capacity_fraction))
        rows.append(
            [
                dataset,
                replay_trace(FIFOCache(capacity), flat),
                replay_trace(LRUCache(capacity), flat),
                replay_trace(LFUCache(capacity), flat),
                replay_trace(ImportanceCache(capacity, importance), flat),
                hotness_window_hit_ratio(batches, capacity, config.dps_window),
            ]
        )
    return ExperimentResult(
        experiment_id="table6",
        title=f"Cache hit ratio comparison (capacity = {capacity_fraction:.0%} of vocab)",
        headers=["dataset", "FIFO", "LRU", "LFU", "importance", "HET-KG"],
        rows=rows,
        notes="paper: HET-KG's prefetch/filter cache beats all simple policies",
    )


def run_policies_extended(
    scale: float = 0.05,
    seed: int = 0,
    capacity_fraction: float = 0.1,
) -> ExperimentResult:
    """Extended policy comparison (beyond Table VI): adaptive policies.

    Adds CLOCK, 2Q, and ARC — the strongest classical *reactive* caches —
    to the Table VI line-up.  The point being stressed: HET-KG's advantage
    is prefetch-based *foresight*; even adaptive reactive policies cannot
    see the upcoming window.
    """
    config = base_config(seed=seed, batch_size=32, num_negatives=8)
    rows = []
    for dataset in ("fb15k", "wn18", "freebase86m-mini"):
        bundle = dataset_bundle(dataset, scale=scale, seed=seed)
        batches, _ = _access_trace(bundle, config, seed)
        flat = np.concatenate(batches)
        vocabulary = bundle.graph.num_entities + bundle.graph.num_relations
        capacity = max(4, int(vocabulary * capacity_fraction))
        rows.append(
            [
                dataset,
                replay_trace(ClockCache(capacity), flat),
                replay_trace(TwoQueueCache(capacity), flat),
                replay_trace(ARCCache(capacity), flat),
                hotness_window_hit_ratio(batches, capacity, config.dps_window),
                belady_hit_ratio(flat.tolist(), capacity),
            ]
        )
    return ExperimentResult(
        experiment_id="ablation-policies-extended",
        title="Adaptive reactive policies vs HET-KG's prefetch cache",
        headers=["dataset", "CLOCK", "2Q", "ARC", "HET-KG", "Belady (OPT)"],
        rows=rows,
        notes=(
            "extension of Table VI: foresight beats adaptivity. Belady's "
            "optimum bounds all *reactive* policies, but a prefetching "
            "cache can exceed it: pre-loading the upcoming window's hot "
            "ids avoids even the cold misses every replacement policy "
            "must take"
        ),
    )


# -------------------------------------------------------------- Table VII


def run_table7(
    scale: float = 0.05, epochs: int = 6, seed: int = 0
) -> ExperimentResult:
    """Table VII: heterogeneity-aware filtering (HET-KG) vs frequency-only
    (HET-KG-N).

    Paper shape: HET-KG-N trains slightly faster (its cache skews to the
    densest relations) but converges to lower accuracy because entity
    update frequencies become uneven.
    """
    rows = []
    for dataset in ("fb15k", "wn18"):
        bundle = dataset_bundle(dataset, scale=scale, seed=seed)
        for label, ratio in (("HET-KG", 0.25), ("HET-KG-N", None)):
            config = base_config(epochs=epochs, seed=seed, entity_ratio=ratio)
            result = run_system("hetkg-d", config, bundle, eval_max_queries=150)
            rows.append(
                [
                    dataset,
                    label,
                    result.final_metrics.get("mrr", 0.0),
                    result.final_metrics.get("hits@1", 0.0),
                    result.final_metrics.get("hits@10", 0.0),
                    result.cache_hit_ratio,
                    result.sim_time,
                ]
            )
    return ExperimentResult(
        experiment_id="table7",
        title="HET-KG with and without heterogeneity-aware filtering",
        headers=["dataset", "system", "MRR", "Hits@1", "Hits@10", "hit ratio", "time (s)"],
        rows=rows,
        notes="paper: HET-KG-N is faster but less accurate",
    )
