"""Ablations of design decisions DESIGN.md calls out (beyond the paper's
own tables): METIS vs random partitioning, chunked vs independent negative
sampling, and the DPS prefetch window."""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    base_config,
    dataset_bundle,
    run_system,
)
from repro.partition.metis import MetisPartitioner
from repro.partition.quality import balance, cut_fraction
from repro.partition.random_partition import RandomPartitioner
from repro.sampling.negative import NegativeSampler


def run_ablation_partition(
    scale: float = 0.05, epochs: int = 2, seed: int = 0
) -> ExperimentResult:
    """METIS vs random partitioning: edge cut and resulting training time.

    DGL-KE's claim (adopted by HET-KG, §V): METIS significantly reduces
    cross-machine entity pulls compared to random partitioning.
    """
    rows = []
    for dataset in ("fb15k", "freebase86m-mini"):
        bundle = dataset_bundle(dataset, scale=scale, seed=seed)
        for name, partitioner in (
            ("random", RandomPartitioner(seed=seed)),
            ("metis", MetisPartitioner(seed=seed)),
        ):
            part = partitioner.partition(bundle.split.train, 4)
            config = base_config(epochs=epochs, seed=seed, partitioner=name)
            result = run_system("dglke", config, bundle, eval_max_queries=1)
            rows.append(
                [
                    dataset,
                    name,
                    cut_fraction(bundle.split.train, part),
                    balance(part),
                    result.communication_time,
                    result.sim_time,
                ]
            )
    return ExperimentResult(
        experiment_id="ablation-partition",
        title="METIS vs random partitioning (DGL-KE, 4 machines)",
        headers=["dataset", "partitioner", "cut fraction", "balance", "comm (s)", "time (s)"],
        rows=rows,
        notes="METIS should cut fewer edges and communicate less",
    )


def run_ablation_negatives(
    scale: float = 0.05, seed: int = 0, batches: int = 50
) -> ExperimentResult:
    """Chunked vs independent negative sampling: unique ids per batch.

    §V's complexity argument: sharing negatives within a chunk reduces the
    number of distinct embeddings a batch touches from ``O(b_p * b_n)`` to
    ``O(b_p * b_n / b_c)``, directly cutting pull traffic.
    """
    bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
    graph = bundle.split.train
    config = base_config(seed=seed)
    rows = []
    for strategy in ("independent", "chunked"):
        sampler = NegativeSampler(
            num_entities=graph.num_entities,
            num_negatives=config.num_negatives,
            strategy=strategy,
            chunk_size=config.negative_chunk,
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        uniques = []
        for _ in range(batches):
            idx = rng.choice(graph.num_triples, size=config.batch_size, replace=False)
            batch = sampler.corrupt(graph.triples[idx])
            uniques.append(len(batch.unique_entities()))
        rows.append(
            [
                strategy,
                float(np.mean(uniques)),
                config.batch_size * config.num_negatives,
            ]
        )
    return ExperimentResult(
        experiment_id="ablation-negatives",
        title="Unique entities touched per batch by negative-sampling strategy",
        headers=["strategy", "mean unique entities", "raw corruptions"],
        rows=rows,
        notes="chunked sharing shrinks the per-batch working set",
    )


def run_model_zoo(
    scale: float = 0.05, epochs: int = 6, seed: int = 0
) -> ExperimentResult:
    """Model zoo (extension): every registered scoring model on HET-KG-D.

    The paper trains TransE and DistMult; the cache is model-agnostic, so
    this sweep demonstrates the full registry training through the
    identical distributed stack.  MRR differences reflect how well each
    geometry fits the synthetic generator's translational structure.
    """
    from repro.models.base import MODEL_REGISTRY

    bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
    rows = []
    for model_name in sorted(MODEL_REGISTRY):
        config = base_config(epochs=epochs, seed=seed, model=model_name)
        result = run_system(
            "hetkg-d", config, bundle, eval_max_queries=150, eval_candidates=None
        )
        rows.append(
            [
                model_name,
                result.final_metrics.get("mrr", 0.0),
                result.final_metrics.get("hits@10", 0.0),
                result.cache_hit_ratio,
                result.sim_time,
            ]
        )
    return ExperimentResult(
        experiment_id="ablation-model-zoo",
        title="All scoring models through HET-KG-D (fb15k)",
        headers=["model", "MRR", "Hits@10", "hit ratio", "time (s)"],
        rows=rows,
        notes="extension: the hot-embedding cache is score-function agnostic",
    )


def run_ablation_compression(
    scale: float = 0.05, epochs: int = 4, seed: int = 0
) -> ExperimentResult:
    """Wire compression (extension): bytes vs accuracy trade-off.

    Compressing remote PS traffic is orthogonal to caching.  fp16 halves
    remote bytes at negligible accuracy cost; int8 quarters them with a
    measurable but small penalty.
    """
    bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
    rows = []
    for codec in ("none", "fp16", "int8"):
        config = base_config(epochs=epochs, seed=seed, compression=codec)
        result = run_system("hetkg-d", config, bundle, eval_max_queries=150)
        rows.append(
            [
                codec,
                result.comm_totals.remote_bytes / 1e6,
                result.communication_time,
                result.sim_time,
                result.final_metrics.get("mrr", 0.0),
            ]
        )
    return ExperimentResult(
        experiment_id="ablation-compression",
        title="Wire compression of remote PS traffic (HET-KG-D, fb15k)",
        headers=["codec", "remote MB", "comm (s)", "time (s)", "MRR"],
        rows=rows,
        notes="extension beyond the paper; remote bytes halve/quarter",
    )


def run_ablation_dps_window(
    scale: float = 0.05,
    epochs: int = 3,
    seed: int = 0,
    windows: tuple[int, ...] = (4, 16, 64, 256),
) -> ExperimentResult:
    """DPS prefetch window D: hit ratio vs rebuild overhead.

    Small windows track the access pattern closely (higher hit ratio) but
    rebuild the table often; large windows converge towards CPS.
    """
    bundle = dataset_bundle("fb15k", scale=scale, seed=seed)
    rows = []
    for window in windows:
        config = base_config(epochs=epochs, seed=seed, dps_window=window)
        result = run_system("hetkg-d", config, bundle, eval_max_queries=1)
        rows.append(
            [window, result.cache_hit_ratio, result.compute_time, result.sim_time]
        )
    return ExperimentResult(
        experiment_id="ablation-dps-window",
        title="DPS prefetch window D (HET-KG-D, fb15k)",
        headers=["window D", "hit ratio", "compute (s)", "time (s)"],
        rows=rows,
        notes="hit ratio should fall slowly as D grows (towards CPS)",
    )
