"""Micro-batching of inference queries.

Scoring one triple at a time wastes both the vectorised score kernels and
the per-message network budget: a cache miss costs one round trip whether
it fetches one row or a hundred.  The batcher therefore holds arriving
queries until either

* ``max_batch`` queries are pending (**flush-on-full**), or
* the *oldest* pending query has waited ``max_wait`` simulated seconds
  (**flush-on-timeout**),

whichever comes first.  ``max_wait`` bounds the queueing latency a lone
query can suffer at low load; ``max_batch`` bounds the work per dispatch
at high load — the classic throughput/latency knob pair.

The batcher is time-agnostic: it never reads a clock, it only compares
the timestamps the driver hands it.  That keeps it deterministic and
directly unit-testable.
"""

from __future__ import annotations

from repro.serving.queries import Query
from repro.utils.validation import check_positive


class QueryBatcher:
    """Accumulate queries into dispatchable micro-batches.

    Parameters
    ----------
    max_batch:
        Flush as soon as this many queries are pending.
    max_wait:
        Flush when the oldest pending query has waited this long
        (simulated seconds).  ``0`` disables batching-by-time: every
        query's deadline is its own arrival, so batches only form when
        queries arrive at the same instant or the server is busy.
    """

    def __init__(self, max_batch: int = 32, max_wait: float = 2e-3) -> None:
        check_positive("max_batch", max_batch)
        if max_wait < 0:
            raise ValueError(f"max_wait must be non-negative, got {max_wait}")
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._pending: list[Query] = []
        #: Dispatch statistics.
        self.batches_emitted = 0
        self.queries_offered = 0
        self.full_flushes = 0
        self.timeout_flushes = 0

    # ------------------------------------------------------------------ state

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> tuple[Query, ...]:
        return tuple(self._pending)

    def deadline(self) -> float | None:
        """Simulated time at which the pending batch must flush.

        ``None`` when nothing is pending.  Queries are offered in arrival
        order, so the oldest pending query is always ``pending[0]``.
        """
        if not self._pending:
            return None
        return self._pending[0].arrival + self.max_wait

    # ------------------------------------------------------------------ flow

    def offer(self, query: Query) -> list[Query] | None:
        """Add ``query``; return a batch iff this fill triggered a flush."""
        if self._pending and query.arrival < self._pending[-1].arrival:
            raise ValueError(
                f"queries must be offered in arrival order: got {query.arrival} "
                f"after {self._pending[-1].arrival}"
            )
        self.queries_offered += 1
        self._pending.append(query)
        if len(self._pending) >= self.max_batch:
            self.full_flushes += 1
            return self._drain()
        return None

    def poll(self, now: float) -> list[Query] | None:
        """Flush-on-timeout check: return the pending batch iff its
        deadline is at or before ``now``."""
        deadline = self.deadline()
        if deadline is not None and deadline <= now:
            self.timeout_flushes += 1
            return self._drain()
        return None

    def drain(self) -> list[Query]:
        """Unconditionally flush whatever is pending (end of stream)."""
        if self._pending:
            self.timeout_flushes += 1
        return self._drain()

    def _drain(self) -> list[Query]:
        batch, self._pending = self._pending, []
        if batch:
            self.batches_emitted += 1
        return batch

    @property
    def mean_batch_size(self) -> float:
        if self.batches_emitted == 0:
            return 0.0
        drained = self.queries_offered - len(self._pending)
        return drained / self.batches_emitted
