"""Cliff-free continuous deployment: trainer checkpoints into serving.

The streaming story (PR 5) ends with a trained-online model and a
serving tier that started warm *once*.  In production the trainer never
stops: every few minutes a fresher checkpoint exists, and swapping it
into the serving path naively costs a **hit-ratio cliff** — the serving
cache's rows are stale against the new tables, invalidating them sends
every hot row back to the shards at once, and p99 spikes exactly when
the deployment was supposed to be invisible.

:class:`VersionedStore` is the double-buffered fix: the frontend reads
through an *active* :class:`~repro.serving.store.EmbeddingStore` while
the next version sits fully materialised in a *staging* slot.
:meth:`VersionedStore.swap` is atomic from the reader's point of view —
one reference assignment between batches; no query ever observes half a
version.

:class:`ContinuousDeployment` runs the publish protocol:

1. snapshot the trainer's tables (a copy — the trainer keeps mutating
   its own) into the staging slot;
2. **re-warm before the swap**: re-pin the serving cache's membership
   from the trainer's current hot tables
   (:meth:`~repro.serving.frontend.ServingFrontend.warm_from`, which
   preserves the configured cache's capacity and policy) and meter the
   background warm-up pull traffic — off the latency path, the way a
   real deployment pre-faults the new replica's cache while the old one
   still serves;
3. swap, stamping the serving version and its trainer step.

Staleness of served embeddings is a first-class metric: the gap between
the trainer's latest published step and the step of the version
currently serving (``VersionedStore.staleness``), surfaced on
:class:`~repro.serving.metrics.ServingReport`.

Disabling step 2 (``rewarm=False``) reproduces the naive deployment:
the swap invalidates the cache and the hit ratio cliffs until the hot
set re-admits — the control the ``serving-scale`` experiment measures.
"""

from __future__ import annotations

import numpy as np

from repro.ps.kvstore import ShardedKVStore
from repro.ps.network import CommRecord
from repro.serving.store import EmbeddingStore


class VersionedStore:
    """Double-buffered embedding store with atomic version swaps.

    Drop-in for :class:`EmbeddingStore` wherever the frontend reads it:
    attribute access delegates to the *active* version, so
    ``versioned.store`` / ``versioned.model`` / ``score_triples`` always
    resolve against the embeddings currently being served.
    """

    def __init__(self, store: EmbeddingStore, trainer_step: int = 0) -> None:
        self._active = store
        self._staging: EmbeddingStore | None = None
        self._staging_step = 0
        #: Monotone version counter (0 = the initial deployment).
        self.version = 0
        #: Trainer step the active version was checkpointed at.
        self.active_step = int(trainer_step)
        #: Latest trainer step made known via :meth:`note_trainer_step`.
        self.latest_step = int(trainer_step)
        #: Completed swaps.
        self.swaps = 0
        #: Swap history as ``(version, trainer_step)`` stamps.
        self.history: list[tuple[int, int]] = [(0, int(trainer_step))]

    # ------------------------------------------------------------ delegation

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._active, name)

    @property
    def active(self) -> EmbeddingStore:
        return self._active

    @property
    def staging(self) -> EmbeddingStore | None:
        return self._staging

    # --------------------------------------------------------------- publish

    def note_trainer_step(self, step: int) -> None:
        """Record trainer progress (drives the staleness metric)."""
        self.latest_step = max(self.latest_step, int(step))

    @property
    def staleness(self) -> int:
        """Served-version age: trainer steps the active version is behind."""
        return self.latest_step - self.active_step

    def stage(self, store: EmbeddingStore, trainer_step: int) -> None:
        """Materialise the next version in the staging slot.

        Geometry (shard count, model dims) must match the active version
        — the frontend's ownership metering and scoring assume it.
        """
        active = self._active
        if store.store.num_machines != active.store.num_machines:
            raise ValueError(
                f"staged version has {store.store.num_machines} shards, "
                f"active has {active.store.num_machines}"
            )
        if (
            store.model.entity_dim != active.model.entity_dim
            or store.model.relation_dim != active.model.relation_dim
        ):
            raise ValueError("staged version's model geometry differs from active")
        self._staging = store
        self._staging_step = int(trainer_step)
        self.note_trainer_step(trainer_step)

    def swap(self) -> int:
        """Atomically promote staging to active; returns the new version."""
        if self._staging is None:
            raise RuntimeError("no staged version to swap in (call stage() first)")
        self._active = self._staging
        self._staging = None
        self.active_step = self._staging_step
        self.version += 1
        self.swaps += 1
        self.history.append((self.version, self.active_step))
        return self.version


def snapshot_from_trainer(trainer) -> EmbeddingStore:
    """Copy a trainer's current tables into an independent serving store.

    Unlike :meth:`EmbeddingStore.from_trainer` (zero-copy, live), the
    snapshot is immutable under continued training — exactly what a
    published checkpoint is.  Ownership and shard count carry over so
    serving-side locality still matches the training partition.
    """
    if trainer.server is None:
        raise RuntimeError("trainer has no state yet; call setup() or train()")
    source = trainer.server.store
    entity = np.array(source.table("entity"), dtype=np.float64, copy=True)
    relation = np.array(source.table("relation"), dtype=np.float64, copy=True)
    owners = np.array(
        source.owners("entity", np.arange(len(entity), dtype=np.int64)),
        dtype=np.int64,
        copy=True,
    )
    store = ShardedKVStore(entity, relation, owners, source.num_machines)
    return EmbeddingStore(trainer.model, store)


class _TrainerHotMembership:
    """The union of a trainer's per-worker hot-table memberships.

    Quacks like :class:`~repro.cache.sync.HotEmbeddingCache` for
    :meth:`~repro.serving.frontend.ServingFrontend.warm_from` — ids are
    deduplicated and sorted, so the membership is deterministic whatever
    the worker iteration order.
    """

    def __init__(self, trainer) -> None:
        self._trainer = trainer

    def cached_ids(self, kind: str) -> np.ndarray:
        chunks = [
            np.asarray(w.cache.cached_ids(kind), dtype=np.int64)
            for w in self._trainer.workers
            if w.cache is not None
        ]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(chunks))


class ContinuousDeployment:
    """The trainer→serving publish loop over one frontend.

    Parameters
    ----------
    versioned:
        The :class:`VersionedStore` the frontend was constructed over.
    frontend:
        The live :class:`~repro.serving.frontend.ServingFrontend`.
    rewarm:
        Default re-warm behaviour per publish (overridable per call).
        ``False`` is the naive swap: invalidate and eat the cliff.
    """

    def __init__(self, versioned: VersionedStore, frontend, rewarm: bool = True) -> None:
        self.versioned = versioned
        self.frontend = frontend
        self.rewarm = rewarm
        #: Background warm-up traffic metered across all publishes.
        self.warm_traffic = CommRecord()

    def publish(self, trainer, step: int, rewarm: bool | None = None) -> int:
        """Snapshot ``trainer`` at ``step``, re-warm, swap; new version.

        The warm-up pull happens *before* the swap and off the latency
        path: its bytes are metered (into the frontend's comm totals and
        :attr:`warm_traffic`) but the serving clock does not advance —
        the pre-fault overlaps with the old version still serving.
        """
        rewarm = self.rewarm if rewarm is None else rewarm
        snapshot = snapshot_from_trainer(trainer)
        self.versioned.stage(snapshot, step)
        frontend = self.frontend
        with frontend.trace.span(
            "serve.swap", "deploy", version=self.versioned.version + 1, step=step
        ) as span:
            warmed = 0
            if rewarm and frontend.cache is not None:
                membership = _TrainerHotMembership(trainer)
                for kind in ("entity", "relation"):
                    ids = membership.cached_ids(kind)
                    if len(ids):
                        comm = frontend._meter(kind, ids)
                        self.warm_traffic.merge(comm)
                        frontend.comm_totals.merge(comm)
                        warmed += len(ids)
                frontend.warm_from(membership)
            elif frontend.cache is not None:
                frontend.cache.invalidate()
            version = self.versioned.swap()
            span.set(rewarmed_rows=warmed)
        frontend.trace.count("serve.swaps")
        if warmed:
            frontend.trace.count("serve.swap.warmed_rows", warmed)
        return version
