"""Query model for the serving subsystem.

A serving deployment answers three kinds of link-prediction requests over
a trained KGE model (the inference-side mirror of the paper's training
workload):

* ``score``  — "how plausible is triple (h, r, t)?"  Touches two entity
  rows and one relation row.
* ``tail``   — "given (h, r, ?), rank candidate tails."  Touches the head
  row, the relation row, and every candidate entity row.
* ``head``   — "given (?, r, t), rank candidate heads."  Symmetric.

Queries are plain frozen records stamped with a simulated arrival time;
the :mod:`repro.serving.workload` generator produces streams of them and
:mod:`repro.serving.frontend` replays the stream against the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Recognised query kinds.
SCORE, TAIL_PREDICTION, HEAD_PREDICTION = "score", "tail", "head"

QUERY_KINDS = (SCORE, TAIL_PREDICTION, HEAD_PREDICTION)

#: Recognised query outcomes (see :mod:`repro.serving.admission`):
#: ``admitted`` — served in full (or degraded; see ``QueryResult.degraded``),
#: ``rejected`` — refused up front by a tenant's token bucket,
#: ``shed``     — dropped by the load shedder to protect the SLO,
#: ``timeout``  — admitted but the shard pull burned its retry budget.
ADMITTED, REJECTED, SHED, TIMEOUT = "admitted", "rejected", "shed", "timeout"

OUTCOMES = (ADMITTED, REJECTED, SHED, TIMEOUT)


@dataclass(frozen=True)
class Query:
    """One inference request.

    ``candidates`` is the entity candidate set a prediction query ranks
    against (empty for ``score`` queries).  Real deployments either rank
    against a curated candidate list (recommendation retrieval) or a
    sampled one; carrying the set on the query keeps the frontend
    deterministic and lets the workload generator control its skew.
    """

    qid: int
    kind: str
    head: int
    relation: int
    tail: int
    arrival: float
    candidates: tuple[int, ...] = ()
    #: Multi-tenant serving: which tenant issued the query.  The empty
    #: string is the anonymous single-tenant default and is exempt from
    #: admission control unless the controller defines a ``*`` bucket.
    tenant: str = ""

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; expected one of {QUERY_KINDS}"
            )
        if self.arrival < 0:
            raise ValueError(f"arrival must be non-negative, got {self.arrival}")

    # ------------------------------------------------------------- accesses

    def entity_ids(self) -> np.ndarray:
        """Entity rows this query touches (duplicates preserved)."""
        if self.kind == SCORE:
            base = [self.head, self.tail]
        elif self.kind == TAIL_PREDICTION:
            base = [self.head]
        else:
            base = [self.tail]
        return np.asarray(base + list(self.candidates), dtype=np.int64)

    def relation_ids(self) -> np.ndarray:
        """Relation rows this query touches."""
        return np.asarray([self.relation], dtype=np.int64)

    @property
    def num_scores(self) -> int:
        """Scoring work (triples scored) this query induces."""
        return 1 if self.kind == SCORE else max(1, len(self.candidates))


@dataclass
class QueryResult:
    """Completion record for one served query.

    Every offered query produces exactly one record, whatever its fate:
    rejected and shed queries complete instantly at the decision point
    with ``answer=None``; timed-out queries complete when their batch's
    retry budget exhausted.  Only ``outcome == ADMITTED`` records carry a
    real answer and count toward the latency percentiles.
    """

    qid: int
    kind: str
    arrival: float
    completion: float
    batch_size: int
    #: ``score`` queries: the scalar score.  Prediction queries: top-k
    #: candidate entity ids, best first.  ``None`` for queries that were
    #: rejected, shed, or timed out.
    answer: float | np.ndarray | None = 0.0
    #: One of :data:`OUTCOMES`.
    outcome: str = ADMITTED
    #: Issuing tenant ("" = anonymous single-tenant traffic).
    tenant: str = ""
    #: True when the shed ladder served a truncated top-k instead of the
    #: full candidate set (outcome stays ``admitted``).
    degraded: bool = False

    @property
    def latency(self) -> float:
        return self.completion - self.arrival


@dataclass
class QueryLog:
    """An ordered stream of queries plus the access counts it induces.

    The counts feed :func:`repro.cache.filtering.filter_hot_ids` to build
    a CPS-style static hot set for the serving cache, exactly how the
    training side builds its cache from a prefetch window (Alg. 1-2).
    """

    queries: list[Query] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def access_counts(self) -> tuple[dict[int, int], dict[int, int]]:
        """``(entity_counts, relation_counts)`` over the whole log."""
        entity_counts: dict[int, int] = {}
        relation_counts: dict[int, int] = {}
        for query in self.queries:
            for eid in query.entity_ids().tolist():
                entity_counts[eid] = entity_counts.get(eid, 0) + 1
            for rid in query.relation_ids().tolist():
                relation_counts[rid] = relation_counts.get(rid, 0) + 1
        return entity_counts, relation_counts
