"""Serving-side metrics: latency percentiles and the benchmark report.

Serving quality is judged against latency SLOs ("p99 under X ms"), not
means — micro-batching in particular trades *mean* latency for
throughput while the tail is governed by ``max_wait`` plus queueing.
This module aggregates per-query completions into the standard SLO
report: throughput, p50/p95/p99, hit ratio, and the communication
footprint of the misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.ps.network import CommRecord
from repro.serving.queries import QueryResult


def latency_percentile(latencies: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``latencies``, 0.0 when empty.

    Uses linear interpolation (numpy's default), so p50 of two samples is
    their midpoint — deterministic and scale-stable.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(latencies) == 0:
        return 0.0
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q))


@dataclass
class ServingReport:
    """Aggregate outcome of replaying one query stream through a frontend."""

    label: str
    num_queries: int
    duration: float  # simulated seconds from start to last completion
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    hit_ratio: float
    comm: CommRecord = field(default_factory=CommRecord)
    num_batches: int = 0
    mean_batch_size: float = 0.0
    compute_time: float = 0.0
    communication_time: float = 0.0
    idle_time: float = 0.0

    @property
    def throughput(self) -> float:
        """Served queries per simulated second."""
        if self.duration <= 0.0:
            return 0.0
        return self.num_queries / self.duration

    def as_row(self) -> list:
        """Columns for the benchmark tables (see ``headers()``)."""
        return [
            self.label,
            self.num_queries,
            self.throughput,
            self.latency_p50 * 1e3,
            self.latency_p95 * 1e3,
            self.latency_p99 * 1e3,
            self.hit_ratio,
            self.comm.remote_bytes / 1e6,
            self.mean_batch_size,
        ]

    @staticmethod
    def headers() -> list[str]:
        return [
            "config",
            "queries",
            "qps",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "hit ratio",
            "remote MB",
            "batch size",
        ]


def aggregate_results(
    label: str,
    results: Sequence[QueryResult],
    hit_ratio: float,
    comm: CommRecord,
    num_batches: int,
    mean_batch_size: float,
    compute_time: float = 0.0,
    communication_time: float = 0.0,
    idle_time: float = 0.0,
) -> ServingReport:
    """Fold per-query completion records into a :class:`ServingReport`."""
    latencies = [r.latency for r in results]
    if results:
        start = min(r.arrival for r in results)
        end = max(r.completion for r in results)
        duration = max(end - start, 0.0)
    else:
        duration = 0.0
    return ServingReport(
        label=label,
        num_queries=len(results),
        duration=duration,
        latency_mean=float(np.mean(latencies)) if latencies else 0.0,
        latency_p50=latency_percentile(latencies, 50.0),
        latency_p95=latency_percentile(latencies, 95.0),
        latency_p99=latency_percentile(latencies, 99.0),
        latency_max=max(latencies) if latencies else 0.0,
        hit_ratio=hit_ratio,
        comm=comm,
        num_batches=num_batches,
        mean_batch_size=mean_batch_size,
        compute_time=compute_time,
        communication_time=communication_time,
        idle_time=idle_time,
    )
