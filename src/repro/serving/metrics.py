"""Serving-side metrics: latency percentiles and the benchmark report.

Serving quality is judged against latency SLOs ("p99 under X ms"), not
means — micro-batching in particular trades *mean* latency for
throughput while the tail is governed by ``max_wait`` plus queueing.
This module aggregates per-query completions into the standard SLO
report: throughput, p50/p95/p99, hit ratio, and the communication
footprint of the misses.

With the overload layer (:mod:`repro.serving.admission`) a query can
end ``rejected``/``shed``/``timeout`` instead of ``admitted``, so the
report distinguishes **offered** load (every query, ``num_queries``)
from **served** load: latency percentiles are computed over admitted
completions only (a shed query "completes" instantly at its decision
point and would otherwise drag the percentiles toward zero exactly when
the server is drowning).  ``shed_rate`` and ``goodput`` — admitted
queries finishing inside the SLO, per second — are the overload
headline numbers; per-tenant p99 exposes whether admission control
actually isolated the tenants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.ps.network import CommRecord
from repro.serving.queries import ADMITTED, REJECTED, SHED, TIMEOUT, QueryResult


def latency_percentile(latencies: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``latencies``, 0.0 when empty.

    Uses linear interpolation (numpy's default), so p50 of two samples is
    their midpoint — deterministic and scale-stable.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(latencies) == 0:
        return 0.0
    return float(np.percentile(np.asarray(latencies, dtype=np.float64), q))


@dataclass
class ServingReport:
    """Aggregate outcome of replaying one query stream through a frontend."""

    label: str
    num_queries: int
    duration: float  # simulated seconds from start to last completion
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    hit_ratio: float
    comm: CommRecord = field(default_factory=CommRecord)
    num_batches: int = 0
    mean_batch_size: float = 0.0
    compute_time: float = 0.0
    communication_time: float = 0.0
    idle_time: float = 0.0
    #: Outcome split of the offered queries (sums to ``num_queries``).
    num_admitted: int = 0
    num_rejected: int = 0
    num_shed: int = 0
    num_timeout: int = 0
    #: Admitted queries answered with a truncated top-k (degraded rung).
    num_degraded: int = 0
    #: Admitted queries that finished within the SLO (= ``num_admitted``
    #: when no SLO was configured).
    num_good: int = 0
    #: The latency objective the run was judged against (``None`` = none).
    slo: float | None = None
    #: p99 latency of admitted completions per (non-anonymous) tenant.
    tenant_p99: dict[str, float] = field(default_factory=dict)
    #: Staleness of the served embeddings at report time: trainer steps
    #: the active version lags the freshest published checkpoint.
    staleness: int = 0
    #: Version swaps the frontend served across.
    version_swaps: int = 0

    @property
    def throughput(self) -> float:
        """Offered queries completed per simulated second."""
        if self.duration <= 0.0:
            return 0.0
        return self.num_queries / self.duration

    @property
    def shed_rate(self) -> float:
        """Fraction of offered queries not served in full or degraded
        form (rejected + shed + timed out)."""
        if self.num_queries == 0:
            return 0.0
        unserved = self.num_rejected + self.num_shed + self.num_timeout
        return unserved / self.num_queries

    @property
    def goodput(self) -> float:
        """Admitted-and-within-SLO queries per simulated second."""
        if self.duration <= 0.0:
            return 0.0
        return self.num_good / self.duration

    def as_row(self) -> list:
        """Columns for the benchmark tables (see ``headers()``)."""
        return [
            self.label,
            self.num_queries,
            self.throughput,
            self.latency_mean * 1e3,
            self.latency_p50 * 1e3,
            self.latency_p95 * 1e3,
            self.latency_p99 * 1e3,
            self.hit_ratio,
            self.comm.remote_bytes / 1e6,
            self.mean_batch_size,
            self.shed_rate,
            self.goodput,
        ]

    @staticmethod
    def headers() -> list[str]:
        return [
            "config",
            "queries",
            "qps",
            "mean (ms)",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "hit ratio",
            "remote MB",
            "batch size",
            "shed rate",
            "goodput",
        ]


def aggregate_results(
    label: str,
    results: Sequence[QueryResult],
    hit_ratio: float,
    comm: CommRecord,
    num_batches: int,
    mean_batch_size: float,
    compute_time: float = 0.0,
    communication_time: float = 0.0,
    idle_time: float = 0.0,
    slo: float | None = None,
    staleness: int = 0,
    version_swaps: int = 0,
) -> ServingReport:
    """Fold per-query completion records into a :class:`ServingReport`.

    ``results`` covers every *offered* query; latency statistics are
    computed over the admitted subset.  ``duration`` spans all records
    (first arrival to last completion), so throughput reflects the
    offered stream.  When every result is admitted — the pre-overload
    serving path — the numbers are bit-identical to the historical
    aggregation.
    """
    admitted = [r for r in results if r.outcome == ADMITTED]
    latencies = [r.latency for r in admitted]
    if results:
        start = min(r.arrival for r in results)
        end = max(r.completion for r in results)
        duration = max(end - start, 0.0)
    else:
        duration = 0.0
    if slo is None:
        num_good = len(admitted)
    else:
        num_good = sum(1 for lat in latencies if lat <= slo)
    by_tenant: dict[str, list[float]] = {}
    for r in admitted:
        if r.tenant:
            by_tenant.setdefault(r.tenant, []).append(r.latency)
    return ServingReport(
        label=label,
        num_queries=len(results),
        duration=duration,
        latency_mean=float(np.mean(latencies)) if latencies else 0.0,
        latency_p50=latency_percentile(latencies, 50.0),
        latency_p95=latency_percentile(latencies, 95.0),
        latency_p99=latency_percentile(latencies, 99.0),
        latency_max=max(latencies) if latencies else 0.0,
        hit_ratio=hit_ratio,
        comm=comm,
        num_batches=num_batches,
        mean_batch_size=mean_batch_size,
        compute_time=compute_time,
        communication_time=communication_time,
        idle_time=idle_time,
        num_admitted=len(admitted),
        num_rejected=sum(1 for r in results if r.outcome == REJECTED),
        num_shed=sum(1 for r in results if r.outcome == SHED),
        num_timeout=sum(1 for r in results if r.outcome == TIMEOUT),
        num_degraded=sum(1 for r in admitted if r.degraded),
        num_good=num_good,
        slo=slo,
        tenant_p99={
            tenant: latency_percentile(lats, 99.0)
            for tenant, lats in sorted(by_tenant.items())
        },
        staleness=staleness,
        version_swaps=version_swaps,
    )
