"""Read-only embedding store for inference.

Bridges training and serving: a checkpoint written by
:func:`repro.core.checkpoint.save_checkpoint` is loaded back into the same
:class:`~repro.ps.kvstore.ShardedKVStore` the trainer used, together with
the scoring model named in the checkpoint metadata.  The serving frontend
then pulls rows through the store's ownership map so the simulated
communication cost of a cache miss matches the training-side cost model.

The store is deliberately read-only — serving never writes embeddings —
so it can be shared by any number of frontends.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.checkpoint import FORMAT_VERSION
from repro.models.base import KGEModel, get_model
from repro.ps.kvstore import ShardedKVStore
from repro.utils.validation import check_positive


class EmbeddingStore:
    """A trained model's embedding tables behind a sharded ownership map.

    Parameters
    ----------
    model:
        The scoring function (geometry must match the tables).
    store:
        Sharded tables with per-row ownership; misses on non-local rows
        are charged as remote traffic by the frontend.
    """

    def __init__(self, model: KGEModel, store: ShardedKVStore) -> None:
        ent_width = store.row_width("entity")
        rel_width = store.row_width("relation")
        if ent_width != model.entity_dim or rel_width != model.relation_dim:
            raise ValueError(
                f"table widths (entity={ent_width}, relation={rel_width}) do "
                f"not match model geometry (entity={model.entity_dim}, "
                f"relation={model.relation_dim})"
            )
        self.model = model
        self.store = store

    # ------------------------------------------------------------ construction

    @classmethod
    def from_checkpoint(
        cls,
        path: str | os.PathLike[str],
        num_machines: int = 1,
        entity_owner: np.ndarray | None = None,
        backing: str = "resident",
        tier=None,
    ) -> "EmbeddingStore":
        """Load a ``core/checkpoint.py`` archive into a serving store.

        Parameters
        ----------
        num_machines:
            Simulated shard count for the serving tier.  ``1`` co-locates
            everything with the frontend (all misses are local pulls).
        entity_owner:
            Optional explicit row->shard map (e.g. the training METIS
            partition).  Defaults to round-robin.
        backing:
            ``"resident"`` (default) or ``"tiered"`` — serve a checkpoint
            larger than the budget by gathering through hot/warm/cold
            tiers (see :mod:`repro.tier`).
        tier:
            Optional :class:`~repro.tier.runtime.TierConfig` for the
            tiered backing.
        """
        check_positive("num_machines", num_machines)
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta_json"]).decode())
            if meta.get("format_version") != FORMAT_VERSION:
                raise ValueError(
                    f"checkpoint format {meta.get('format_version')} is not "
                    f"supported (expected {FORMAT_VERSION})"
                )
            entity_table = data["entity_table"].copy()
            relation_table = data["relation_table"].copy()
        model = get_model(meta["model"], meta["dim"])
        if entity_owner is None:
            entity_owner = np.arange(len(entity_table), dtype=np.int64) % num_machines
        store = ShardedKVStore(
            entity_table,
            relation_table,
            entity_owner,
            num_machines,
            backing=backing,
            tier=tier,
        )
        return cls(model, store)

    @classmethod
    def from_trainer(cls, trainer) -> "EmbeddingStore":
        """Wrap a trained :class:`~repro.core.trainer.HETKGTrainer` in place.

        Zero-copy: the serving store shares the trainer's tables *and* its
        ownership map, so serving-side shard locality matches the training
        partition (the co-located layout of §V).
        """
        if trainer.server is None:
            raise RuntimeError("trainer has no state yet; call setup() or train()")
        return cls(trainer.model, trainer.server.store)

    def with_backing(self, backing: str, tier=None) -> "EmbeddingStore":
        """A new store over the same embeddings under a different backing.

        Used by ``serve-bench --backing tiered``: re-tier a trained (or
        loaded) store under a serving-side budget.  Tables are
        materialized once to seed the new backing; ownership and shard
        count carry over unchanged.
        """
        entity = np.asarray(self.store.table("entity"), dtype=np.float64)
        relation = np.asarray(self.store.table("relation"), dtype=np.float64)
        n = len(entity)
        owners = self.store.owners("entity", np.arange(n, dtype=np.int64))
        store = ShardedKVStore(
            entity,
            relation,
            owners,
            self.store.num_machines,
            backing=backing,
            tier=tier,
        )
        return EmbeddingStore(self.model, store)

    # ----------------------------------------------------------------- queries

    @property
    def num_entities(self) -> int:
        return len(self.store.table("entity"))

    @property
    def num_relations(self) -> int:
        return len(self.store.table("relation"))

    def gather(self, kind: str, ids: np.ndarray) -> np.ndarray:
        """Rows ``ids`` of table ``kind`` (no traffic accounting)."""
        return self.store.read(kind, ids)

    def score_triples(
        self, heads: np.ndarray, relations: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        """Plausibility score per ``(h, r, t)`` row of the batch."""
        h = self.store.table("entity")[np.asarray(heads, dtype=np.int64)]
        r = self.store.table("relation")[np.asarray(relations, dtype=np.int64)]
        t = self.store.table("entity")[np.asarray(tails, dtype=np.int64)]
        return self.model.score(
            np.ascontiguousarray(h),
            np.ascontiguousarray(r),
            np.ascontiguousarray(t),
        )

    def rank_candidates(
        self,
        head: int | None,
        relation: int,
        tail: int | None,
        candidates: np.ndarray,
        k: int = 10,
    ) -> np.ndarray:
        """Top-``k`` candidate entity ids, best first.

        Exactly one of ``head``/``tail`` must be ``None`` — that side is
        filled from ``candidates``.
        """
        if (head is None) == (tail is None):
            raise ValueError("exactly one of head/tail must be None")
        candidates = np.asarray(candidates, dtype=np.int64)
        n = len(candidates)
        if n == 0:
            return candidates
        ent = self.store.table("entity")
        rel = self.store.table("relation")
        cand_rows = ent[candidates]
        r_rows = np.broadcast_to(rel[relation], (n, rel.shape[1]))
        if head is None:
            h_rows, t_rows = cand_rows, np.broadcast_to(ent[tail], (n, ent.shape[1]))
        else:
            h_rows, t_rows = np.broadcast_to(ent[head], (n, ent.shape[1])), cand_rows
        scores = self.model.score(
            np.ascontiguousarray(h_rows),
            np.ascontiguousarray(r_rows),
            np.ascontiguousarray(t_rows),
        )
        # Descending score; ties broken by candidate id for determinism.
        order = np.lexsort((candidates, -scores))
        return candidates[order[: min(k, n)]]

    def memory_bytes(self) -> int:
        return self.store.memory_bytes()

    def memory_report(self) -> dict:
        """Per-kind/per-tier byte breakdown (see ``ShardedKVStore``)."""
        return self.store.memory_report()

    def __repr__(self) -> str:
        return (
            f"EmbeddingStore(model={self.model.name}, "
            f"entities={self.num_entities}, relations={self.num_relations}, "
            f"machines={self.store.num_machines})"
        )
