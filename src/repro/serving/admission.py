"""Multi-tenant admission control and SLO-protecting load shedding.

The serving frontend is sized for the cache-hit path; when offered load
exceeds what the miss path can absorb, an unprotected server queues
without bound and every tenant's p99 collapses together.  This module
puts two deterministic gates in front of the batcher:

**Admission control** (:class:`AdmissionController`) — per-tenant token
buckets refilled by *simulated* time.  A tenant that exceeds its
provisioned rate has its excess queries ``rejected`` up front, before
they consume queue space, so one tenant's burst cannot starve another's
SLO.  Buckets are pure functions of the arrival timestamps, so admission
decisions are bit-reproducible.

**Load shedding** (:class:`LoadShedder`) — a queue-depth/deadline
estimator projects each admitted query's completion time from the
server's backlog and an EWMA of observed per-query service time.  The
response is a *ladder*, never a crash:

1. **full answer** while the projected latency sits under the SLO;
2. **degraded** (truncated top-k: prediction queries score only a prefix
   of their candidate set) once the projection enters the pressure band;
3. **shed** (drop with a first-class ``shed`` outcome) once the
   projection busts the SLO.

Priorities stretch the ladder: a priority-``p`` tenant's shed threshold
is ``(1 + priority_slack * p)`` times the base one, so the lowest
priority sheds first and the highest sheds last.  Each priority level
carries hysteresis — shedding engages at ``enter x SLO`` but only
disengages below ``exit x SLO`` — so the shed boundary cannot flap
query-by-query around the threshold.

Everything here is driven by the frontend's :class:`~repro.utils.simclock.SimClock`
readings; nothing consults wall time or draws randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

#: Shed-ladder decisions returned by :meth:`LoadShedder.assess`.
FULL, DEGRADED, SHED_DECISION = "full", "degraded", "shed"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's admission contract.

    Parameters
    ----------
    name:
        Tenant identifier carried on :class:`~repro.serving.queries.Query`.
        ``"*"`` is the wildcard spec applied to tenants with no explicit
        entry (including anonymous ``""`` traffic).
    rate:
        Sustained admission rate in queries per simulated second.
    burst:
        Token-bucket depth: how many queries may arrive back-to-back
        before the sustained rate gates them.
    priority:
        Shed precedence, ``0`` lowest.  Higher-priority tenants are shed
        later under overload (see :class:`LoadShedder`).
    """

    name: str
    rate: float
    burst: int = 32
    priority: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        check_positive("rate", self.rate)
        check_positive("burst", self.burst)
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")


class TokenBucket:
    """Deterministic token bucket refilled by simulated elapsed time."""

    def __init__(self, rate: float, burst: int) -> None:
        check_positive("rate", rate)
        check_positive("burst", burst)
        self.rate = float(rate)
        self.burst = int(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def try_take(self, now: float) -> bool:
        """Consume one token at simulated time ``now`` if one is available.

        Arrivals are processed in timestamp order, so ``now`` is
        monotone; a stale ``now`` simply refills nothing.
        """
        if now > self._last:
            self.tokens = min(
                float(self.burst), self.tokens + (now - self._last) * self.rate
            )
            self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Per-tenant token buckets plus the priority map the shedder uses.

    Parameters
    ----------
    tenants:
        The tenant contracts.  A spec named ``"*"`` becomes the wildcard
        bucket for tenants (and anonymous traffic) without their own
        entry; with no wildcard, unknown tenants are admitted
        unconditionally at priority 0.
    """

    def __init__(self, tenants: "list[TenantSpec] | tuple[TenantSpec, ...]") -> None:
        self.specs: dict[str, TenantSpec] = {}
        for spec in tenants:
            if spec.name in self.specs:
                raise ValueError(f"duplicate tenant spec {spec.name!r}")
            self.specs[spec.name] = spec
        self._buckets: dict[str, TokenBucket] = {
            name: TokenBucket(spec.rate, spec.burst)
            for name, spec in self.specs.items()
            if name != "*"
        }
        self._wildcard = self.specs.get("*")
        #: Per-tenant decision counters (admitted / rejected).
        self.admitted: dict[str, int] = {}
        self.rejected: dict[str, int] = {}

    # ------------------------------------------------------------- decisions

    def _bucket(self, tenant: str) -> TokenBucket | None:
        bucket = self._buckets.get(tenant)
        if bucket is None and self._wildcard is not None:
            bucket = TokenBucket(self._wildcard.rate, self._wildcard.burst)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, now: float) -> bool:
        """Token-bucket decision for one arrival at simulated ``now``."""
        bucket = self._bucket(tenant)
        ok = True if bucket is None else bucket.try_take(now)
        book = self.admitted if ok else self.rejected
        book[tenant] = book.get(tenant, 0) + 1
        return ok

    def priority(self, tenant: str) -> int:
        spec = self.specs.get(tenant, self._wildcard)
        return spec.priority if spec is not None else 0

    @property
    def max_priority(self) -> int:
        return max((s.priority for s in self.specs.values()), default=0)

    # -------------------------------------------------------------- grammar

    @classmethod
    def parse(cls, spec: str) -> "AdmissionController":
        """Build a controller from the CLI's compact ``--admission`` spec.

        Comma-separated clauses ``name=rate[/burst][/p<priority>]``::

            gold=2000/256/p2,free=500/64,*=100

        ``rate`` is queries per simulated second, ``burst`` the bucket
        depth (default 32), ``p<k>`` the shed priority (default 0).
        ``*`` declares the wildcard bucket for unlisted tenants.
        """
        tenants: list[TenantSpec] = []
        for clause in filter(None, (c.strip() for c in spec.split(","))):
            name, sep, body = clause.partition("=")
            if not sep or not name:
                raise ValueError(
                    f"bad admission clause {clause!r} (expected name=rate[/burst][/p<prio>])"
                )
            parts = body.split("/")
            try:
                rate = float(parts[0])
                burst = 32
                priority = 0
                for extra in parts[1:]:
                    if extra.startswith("p"):
                        priority = int(extra[1:])
                    else:
                        burst = int(extra)
                tenants.append(
                    TenantSpec(name=name, rate=rate, burst=burst, priority=priority)
                )
            except ValueError as exc:
                raise ValueError(
                    f"bad admission clause {clause!r}: {exc}"
                ) from exc
        if not tenants:
            raise ValueError(f"admission spec {spec!r} declares no tenants")
        return cls(tenants)

    def to_spec(self) -> str:
        """The canonical spec string; ``parse(to_spec())`` round-trips."""
        clauses = []
        for spec in self.specs.values():
            clause = f"{spec.name}={spec.rate!r}"
            if spec.burst != 32:
                clause += f"/{spec.burst}"
            if spec.priority:
                clause += f"/p{spec.priority}"
            clauses.append(clause)
        return ",".join(clauses)


@dataclass
class ShedderStats:
    """Cumulative ladder decisions (all priorities)."""

    full: int = 0
    degraded: int = 0
    shed: int = 0
    #: Hysteresis transitions into/out of the shedding state.
    engaged: int = 0
    disengaged: int = 0


class LoadShedder:
    """Deadline-aware laddered load shedding with hysteresis.

    Parameters
    ----------
    slo:
        The latency objective in simulated seconds; projections are
        judged as multiples of it ("pressure").
    degrade_at:
        Pressure at which admitted prediction queries degrade to a
        truncated top-k (fraction of SLO, pre-priority scaling).
    enter / exit:
        Hysteresis band for the shedding state, as pressure multiples:
        shedding engages at ``enter`` and disengages at ``exit``
        (``exit < enter``).  Each priority level keeps its own state.
    priority_slack:
        How much each priority level stretches the thresholds: priority
        ``p`` sheds at ``enter * (1 + priority_slack * p)``.
    degrade_keep:
        Fraction of a prediction query's candidate set scored while
        degraded (at least one candidate survives).
    ewma:
        Smoothing factor of the per-query service-time estimate.
    """

    def __init__(
        self,
        slo: float,
        degrade_at: float = 0.6,
        enter: float = 1.0,
        exit: float = 0.7,
        priority_slack: float = 1.0,
        degrade_keep: float = 0.5,
        ewma: float = 0.25,
    ) -> None:
        check_positive("slo", slo)
        check_positive("enter", enter)
        if not 0.0 < exit < enter:
            raise ValueError(
                f"exit must satisfy 0 < exit < enter, got exit={exit} enter={enter}"
            )
        if not 0.0 < degrade_at <= enter:
            raise ValueError(
                f"degrade_at must be in (0, enter], got {degrade_at}"
            )
        if priority_slack < 0:
            raise ValueError(f"priority_slack must be >= 0, got {priority_slack}")
        if not 0.0 < degrade_keep <= 1.0:
            raise ValueError(f"degrade_keep must be in (0, 1], got {degrade_keep}")
        if not 0.0 < ewma <= 1.0:
            raise ValueError(f"ewma must be in (0, 1], got {ewma}")
        self.slo = float(slo)
        self.degrade_at = float(degrade_at)
        self.enter = float(enter)
        self.exit = float(exit)
        self.priority_slack = float(priority_slack)
        self.degrade_keep = float(degrade_keep)
        self.ewma = float(ewma)
        #: EWMA per-query service-time estimate (seconds); optimistic 0
        #: until the first batch is observed, so a cold server never
        #: sheds on its first arrivals.
        self.service_estimate = 0.0
        self._active: dict[int, bool] = {}
        self.stats = ShedderStats()

    # ------------------------------------------------------------ estimation

    def observe_batch(self, batch_size: int, service_seconds: float) -> None:
        """Fold one dispatched batch's measured service time into the
        per-query estimate (deterministic EWMA)."""
        if batch_size <= 0:
            return
        sample = service_seconds / batch_size
        if self.service_estimate == 0.0:
            self.service_estimate = sample
        else:
            self.service_estimate += self.ewma * (sample - self.service_estimate)

    def projected_latency(
        self, arrival: float, server_clock: float, queue_depth: int, max_wait: float
    ) -> float:
        """Deterministic completion projection for an arrival.

        ``server busy backlog`` (how far the clock already ran ahead of
        this arrival) + service for everything queued ahead + own
        service + the worst-case batching delay.
        """
        backlog = max(server_clock - arrival, 0.0)
        return (
            backlog
            + (queue_depth + 1) * self.service_estimate
            + max_wait
        )

    # -------------------------------------------------------------- decision

    def thresholds(self, priority: int) -> tuple[float, float]:
        """(enter, exit) pressure thresholds for one priority level."""
        stretch = 1.0 + self.priority_slack * max(priority, 0)
        return self.enter * stretch, self.exit * stretch

    def assess(self, priority: int, projected_latency: float) -> str:
        """Ladder decision for one admitted arrival: full/degraded/shed."""
        pressure = projected_latency / self.slo
        enter, exit = self.thresholds(priority)
        active = self._active.get(priority, False)
        if active and pressure <= exit:
            active = False
            self.stats.disengaged += 1
        elif not active and pressure >= enter:
            active = True
            self.stats.engaged += 1
        self._active[priority] = active
        if active:
            self.stats.shed += 1
            return SHED_DECISION
        if pressure >= self.degrade_at:
            self.stats.degraded += 1
            return DEGRADED
        self.stats.full += 1
        return FULL

    def is_shedding(self, priority: int) -> bool:
        return self._active.get(priority, False)

    def truncated_candidates(self, candidates: tuple) -> tuple:
        """The degraded ladder rung: the candidate prefix to score."""
        if not candidates:
            return candidates
        keep = max(1, int(len(candidates) * self.degrade_keep))
        return candidates[:keep]


def assign_tenants(queries, names: "list[str] | tuple[str, ...]"):
    """Tag a query stream with tenants round-robin by query id.

    Deterministic and arrival-independent: query ``qid`` belongs to
    ``names[qid % len(names)]``.  Returns a new list (queries are frozen).
    """
    from dataclasses import replace

    names = list(names)
    if not names:
        raise ValueError("need at least one tenant name")
    return [replace(q, tenant=names[q.qid % len(names)]) for q in queries]
