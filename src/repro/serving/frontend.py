"""The serving frontend: replay a query stream against the store.

One frontend models one inference server co-located with shard
``machine`` of the embedding store.  For every dispatched micro-batch it

1. gathers the **unique** entity/relation rows the batch touches,
2. looks them up in the :class:`~repro.serving.cache.ServingCache`
   (when configured) — hits cost nothing, misses are pulled from their
   owning shard through the same :class:`~repro.ps.network.NetworkModel`
   cost model training uses,
3. scores the batch (real numerics — answers are exact, only *time* is
   simulated) and charges :class:`~repro.ps.network.ComputeModel` time,
4. stamps each query's completion with the frontend's
   :class:`~repro.utils.simclock.SimClock`.

The event loop is deterministic: queries are consumed in arrival order,
flush-on-timeout events fire at exact batcher deadlines, and a busy
server naturally queues work (a batch triggered at time *t* starts at
``max(clock, t)``; the gap is accounted as queueing inside each query's
latency).

Overload robustness (all opt-in; the plain path is bit-identical with
every knob off):

* ``admission`` — an :class:`~repro.serving.admission.AdmissionController`
  gates each arrival through its tenant's token bucket *before* the
  batcher; refused queries complete instantly with the first-class
  ``rejected`` outcome.
* ``shedder`` — a :class:`~repro.serving.admission.LoadShedder` projects
  each admitted arrival's completion from the backlog and sheds or
  degrades (truncated top-k) along its ladder; shed queries complete
  instantly with the ``shed`` outcome.
* ``faults`` — a :class:`~repro.faults.plan.FaultPlan` routes every
  cache-miss pull through a retrying
  :class:`~repro.serving.channel.FaultyShardChannel`; retry waits land
  on the serving clock, and a batch whose retry budget burns out
  completes with the ``timeout`` outcome instead of raising.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Sequence

import numpy as np

from repro.obs.tracer import Tracer, get_tracer
from repro.ps.network import (
    BYTES_PER_ELEMENT,
    CommRecord,
    ComputeModel,
    NetworkModel,
)
from repro.serving.admission import (
    DEGRADED,
    SHED_DECISION,
    AdmissionController,
    LoadShedder,
)
from repro.serving.batcher import QueryBatcher
from repro.serving.cache import ServingCache
from repro.serving.metrics import ServingReport, aggregate_results
from repro.serving.queries import (
    REJECTED,
    SCORE,
    SHED,
    TIMEOUT,
    Query,
    QueryResult,
)
from repro.serving.store import EmbeddingStore
from repro.utils.simclock import SimClock


class ServingFrontend:
    """Single-node inference server over a sharded embedding store.

    Parameters
    ----------
    store:
        The trained embeddings + model (an
        :class:`~repro.serving.store.EmbeddingStore` or a
        :class:`~repro.serving.deploy.VersionedStore`).
    batcher:
        Micro-batching policy (default: batches of 32, 2 ms max wait).
    cache:
        Optional hot-row cache; ``None`` means every row is pulled from
        its owning shard on every batch (the cache-off baseline).
    network / compute:
        Cost models; defaults match the training testbed
        (:class:`NetworkModel`, :class:`ComputeModel` defaults).
    machine:
        Which shard the frontend is co-located with; rows owned by other
        shards cost remote traffic.
    top_k:
        Answer size for prediction queries.
    byte_scale:
        Multiplier on metered bytes, mirroring the trainer's
        ``TrainingConfig.byte_scale`` wire-dimension correction.
    tracer:
        Observability tracer (:mod:`repro.obs`); defaults to the
        process-wide tracer installed by ``--trace`` (zero-cost when
        none is installed).
    admission / shedder / faults:
        The overload layer (see the module docstring); all default off.
    """

    def __init__(
        self,
        store: EmbeddingStore,
        batcher: QueryBatcher | None = None,
        cache: ServingCache | None = None,
        network: NetworkModel | None = None,
        compute: ComputeModel | None = None,
        machine: int = 0,
        top_k: int = 10,
        byte_scale: float = 1.0,
        tracer: Tracer | None = None,
        admission: AdmissionController | None = None,
        shedder: LoadShedder | None = None,
        faults=None,
    ) -> None:
        if byte_scale <= 0:
            raise ValueError(f"byte_scale must be positive, got {byte_scale}")
        if not 0 <= machine < store.store.num_machines:
            raise ValueError(
                f"machine {machine} out of range for "
                f"{store.store.num_machines} shards"
            )
        self.store = store
        self.batcher = batcher if batcher is not None else QueryBatcher()
        self.cache = cache
        self.network = network if network is not None else NetworkModel()
        self.compute = compute if compute is not None else ComputeModel()
        self.machine = machine
        self.top_k = top_k
        self.byte_scale = byte_scale
        self.clock = SimClock()
        self.results: list[QueryResult] = []
        self.comm_totals = CommRecord()
        active = tracer if tracer is not None else get_tracer()
        self.trace = active.scope(f"serving@{machine}", self.clock)
        self.admission = admission
        self.shedder = shedder
        self.injector = None
        self.channel = None
        if faults is not None:
            from repro.faults.injector import FaultInjector
            from repro.serving.channel import FaultyShardChannel

            self.injector = FaultInjector(faults)
            self.channel = FaultyShardChannel(
                store, machine, self.injector, self.clock, byte_scale=byte_scale
            )
            self.channel.trace = self.trace
        self._batches_dispatched = 0
        self._degraded_qids: set[int] = set()

    # ------------------------------------------------------------- warm start

    def warm_from(self, cache) -> None:
        """Adopt a trainer's hot-embedding membership as the serving cache.

        The streaming handoff: an :class:`~repro.stream.ingest.OnlineTrainer`
        that tracked a drifting workload leaves its workers' hot tables
        holding exactly the currently-hot ids — warming from that
        membership means the serving tier starts warm on the distribution
        the stream was last serving, instead of re-profiling from scratch.

        When a serving cache is already configured, its **shape is
        preserved**: :meth:`ServingCache.rewarmed` re-pins (static) or
        pre-admits (dynamic) the membership under the existing capacity
        and policy, capping the membership to the capacity.  Only with no
        cache configured does this install a fresh static cache pinning
        the whole membership (the historical behaviour).

        ``cache`` is a :class:`~repro.cache.sync.HotEmbeddingCache` (or
        anything exposing ``cached_ids(kind)``).
        """
        from repro.cache.filtering import HotSet

        hot = HotSet(
            entities=np.asarray(cache.cached_ids("entity"), dtype=np.int64),
            relations=np.asarray(cache.cached_ids("relation"), dtype=np.int64),
        )
        if self.cache is None:
            self.cache = ServingCache.static(hot)
        else:
            self.cache.rewarmed(hot)

    # -------------------------------------------------------------- event loop

    def run(self, queries: Iterable[Query], label: str | None = None) -> ServingReport:
        """Replay ``queries`` (any iterable, sorted by arrival) and report.

        Can be called repeatedly; state (clock, results, counters)
        accumulates, matching a long-running server fed several streams.
        """
        stream = sorted(queries, key=lambda q: (q.arrival, q.qid))
        for query in stream:
            # Fire every timeout flush that comes due before this arrival.
            while True:
                deadline = self.batcher.deadline()
                if deadline is None or deadline > query.arrival:
                    break
                batch = self.batcher.poll(deadline)
                assert batch, "deadline implies a pending batch"
                self._process(batch, trigger=deadline, reason="timeout")
            query = self._admit(query)
            if query is None:
                continue
            full = self.batcher.offer(query)
            if full:
                self._process(full, trigger=query.arrival, reason="full")
        # End of stream: drain the last partial batch at its deadline.
        deadline = self.batcher.deadline()
        tail = self.batcher.drain()
        if tail:
            self._process(
                tail,
                trigger=deadline if deadline is not None else 0.0,
                reason="drain",
            )
        return self.report(label=label)

    # -------------------------------------------------------------- admission

    def _admit(self, query: Query) -> Query | None:
        """Run one arrival through the overload gates.

        Returns the (possibly degraded) query to enqueue, or ``None``
        when it was rejected/shed — in which case its first-class
        :class:`QueryResult` has already been recorded.  With neither
        gate configured this is a single-comparison fast path, keeping
        the plain serving loop bit-identical to the pre-overload one.
        """
        if self.admission is None and self.shedder is None:
            return query
        if self.admission is not None and not self.admission.admit(
            query.tenant, query.arrival
        ):
            self._finish_unserved(query, REJECTED)
            self.trace.count("serve.rejected")
            return None
        if self.shedder is not None:
            priority = (
                self.admission.priority(query.tenant)
                if self.admission is not None
                else 0
            )
            projected = self.shedder.projected_latency(
                query.arrival,
                self.clock.elapsed,
                len(self.batcher),
                self.batcher.max_wait,
            )
            decision = self.shedder.assess(priority, projected)
            if decision == SHED_DECISION:
                self._finish_unserved(query, SHED)
                self.trace.count("serve.shed")
                return None
            if decision == DEGRADED and len(query.candidates) > 1:
                truncated = self.shedder.truncated_candidates(query.candidates)
                if len(truncated) < len(query.candidates):
                    query = replace(query, candidates=truncated)
                    self._degraded_qids.add(query.qid)
                    self.trace.count("serve.degraded")
        return query

    def _finish_unserved(self, query: Query, outcome: str) -> None:
        """Record a rejection/shed: completes instantly, answerless."""
        self.results.append(
            QueryResult(
                qid=query.qid,
                kind=query.kind,
                arrival=query.arrival,
                completion=query.arrival,
                batch_size=0,
                answer=None,
                outcome=outcome,
                tenant=query.tenant,
            )
        )

    # --------------------------------------------------------------- dispatch

    def _process(
        self, batch: Sequence[Query], trigger: float, reason: str = "full"
    ) -> None:
        """Dispatch one micro-batch triggered at simulated time ``trigger``."""
        if trigger > self.clock.elapsed:
            # Server idle until the batch was triggered.
            with self.trace.span("serve.idle", "idle"):
                self.clock.advance(trigger - self.clock.elapsed, "idle")
        self._batches_dispatched += 1
        service_start = self.clock.elapsed

        pulled_ok = True
        with self.trace.span("serve.fetch", "communication") as span:
            entity_ids = np.unique(np.concatenate([q.entity_ids() for q in batch]))
            relation_ids = np.unique(
                np.concatenate([q.relation_ids() for q in batch])
            )
            comm = CommRecord()
            misses = 0
            if self.channel is not None:
                self.channel.iteration = self._batches_dispatched
            for kind, ids in (("entity", entity_ids), ("relation", relation_ids)):
                if self.cache is not None:
                    hit_mask = self.cache.lookup(kind, ids)
                    miss_ids = ids[~hit_mask]
                else:
                    miss_ids = ids
                if len(miss_ids):
                    if self.channel is not None:
                        pulled, ok = self.channel.pull(kind, miss_ids)
                        comm.merge(pulled)
                        if not ok:
                            pulled_ok = False
                            break
                    else:
                        comm.merge(self._meter(kind, miss_ids))
                misses += len(miss_ids)
            self.comm_totals.merge(comm)
            if pulled_ok:
                self.clock.advance(self.network.charge(comm), "communication")
            span.set(
                batch=len(batch), misses=misses, bytes=comm.total_bytes, reason=reason
            )

        if not pulled_ok:
            # Retry budget exhausted mid-pull: the whole batch times out
            # at the post-retry clock.  No scores are computed, no compute
            # time is charged — the client simply never gets an answer.
            self.trace.count("serve.batches")
            self.trace.count(f"serve.flush.{reason}")
            self.trace.count("serve.timeouts", len(batch))
            completion = self.clock.elapsed
            for query in batch:
                self._degraded_qids.discard(query.qid)
                self.results.append(
                    QueryResult(
                        qid=query.qid,
                        kind=query.kind,
                        arrival=query.arrival,
                        completion=completion,
                        batch_size=len(batch),
                        answer=None,
                        outcome=TIMEOUT,
                        tenant=query.tenant,
                    )
                )
            if self.shedder is not None:
                self.shedder.observe_batch(
                    len(batch), self.clock.elapsed - service_start
                )
            return

        with self.trace.span("serve.compute", "compute") as span:
            num_scores = sum(q.num_scores for q in batch)
            compute_time = self.compute.batch_time(
                num_scores, self.store.model.dim, backward=False
            )
            if self.injector is not None:
                compute_time *= self.injector.straggler_factor(
                    self.machine, self._batches_dispatched
                )
            self.clock.advance(compute_time, "compute")
            span.set(batch=len(batch), scores=num_scores)
        self.trace.count("serve.batches")
        self.trace.count(f"serve.flush.{reason}")
        self.trace.count("serve.queries", len(batch))
        completion = self.clock.elapsed
        for query in batch:
            degraded = query.qid in self._degraded_qids
            if degraded:
                self._degraded_qids.discard(query.qid)
            self.results.append(
                QueryResult(
                    qid=query.qid,
                    kind=query.kind,
                    arrival=query.arrival,
                    completion=completion,
                    batch_size=len(batch),
                    answer=self._answer(query),
                    tenant=query.tenant,
                    degraded=degraded,
                )
            )
        if self.shedder is not None:
            self.shedder.observe_batch(
                len(batch), self.clock.elapsed - service_start
            )

    def _meter(self, kind: str, miss_ids: np.ndarray) -> CommRecord:
        """Traffic to pull ``miss_ids`` to this frontend (mirrors
        :meth:`repro.ps.server.ParameterServer._meter`)."""
        row_bytes = (
            self.store.store.row_width(kind) * BYTES_PER_ELEMENT * self.byte_scale
        )
        local_ids, remote_ids = self.store.store.split_local_remote(
            kind, miss_ids, self.machine
        )
        remote_shards = self.store.store.remote_machine_count(
            kind, miss_ids, self.machine
        )
        return CommRecord(
            local_bytes=int(len(local_ids) * row_bytes),
            remote_bytes=int(len(remote_ids) * row_bytes),
            local_messages=1 if len(local_ids) else 0,
            remote_messages=remote_shards,
        )

    def _answer(self, query: Query) -> float | np.ndarray:
        """Compute the query's actual answer (exact numerics)."""
        if query.kind == SCORE:
            return float(
                self.store.score_triples(
                    np.asarray([query.head]),
                    np.asarray([query.relation]),
                    np.asarray([query.tail]),
                )[0]
            )
        candidates = np.asarray(query.candidates, dtype=np.int64)
        if query.kind == "tail":
            return self.store.rank_candidates(
                query.head, query.relation, None, candidates, k=self.top_k
            )
        return self.store.rank_candidates(
            None, query.relation, query.tail, candidates, k=self.top_k
        )

    # ----------------------------------------------------------------- report

    def report(self, label: str | None = None) -> ServingReport:
        """Aggregate everything served so far into a report."""
        if label is None:
            label = self.cache.label if self.cache is not None else "no-cache"
        return aggregate_results(
            label=label,
            results=self.results,
            hit_ratio=self.cache.hit_ratio if self.cache is not None else 0.0,
            comm=self.comm_totals,
            num_batches=self.batcher.batches_emitted,
            mean_batch_size=self.batcher.mean_batch_size,
            compute_time=self.clock.category("compute"),
            communication_time=self.clock.category("communication"),
            idle_time=self.clock.category("idle"),
            slo=self.shedder.slo if self.shedder is not None else None,
            staleness=int(getattr(self.store, "staleness", 0)),
            version_swaps=int(getattr(self.store, "swaps", 0)),
        )
