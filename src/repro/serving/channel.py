"""Retrying shard-pull channel between a frontend and the embedding store.

The serving analogue of :class:`repro.faults.rpc.FaultyPSChannel`: every
cache-miss pull consults the deterministic
:class:`~repro.faults.injector.FaultInjector` per attempt —

* **PS-shard outage** — an attempt touching a shard inside an
  :class:`~repro.faults.plan.OutageWindow` fails deterministically;
* **drop** — an attempt drops with the window's probability, drawn from
  the injector's per-machine seeded stream;
* **delay** — a successful attempt charges extra in-flight seconds.

Every failed attempt meters its wasted wire traffic as
``CommRecord.retransmit_bytes`` and charges the RPC timeout plus a
jittered exponential backoff to the **serving** clock under
``"communication"`` (inside ``rpc.retry_wait`` spans), so fault overhead
lands directly in the frontend's latency distribution: queries queued
behind a retrying batch see their projected completion rise, which the
:class:`~repro.serving.admission.LoadShedder` turns into shed traffic —
overload degradation instead of an exception.

When the whole retry budget burns without reaching the shard, the pull
**gives up** (returns ``ok=False``): the frontend completes the batch's
queries with the first-class ``timeout`` outcome.  Serving has no
failover replica to force through to — a timed-out answer is simply not
served, which is exactly what a deadline-bound client observes.

Batches, not training steps, index the fault windows here: batch ``k``
(1-based) is "iteration ``k``" for window/crash matching purposes.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injector import FaultInjector
from repro.obs.tracer import NULL_SCOPE
from repro.ps.network import BYTES_PER_ELEMENT, CommRecord
from repro.utils.simclock import SimClock


class FaultyShardChannel:
    """Per-frontend retrying pull path over the sharded embedding store.

    Parameters
    ----------
    store:
        The :class:`~repro.serving.store.EmbeddingStore` (or a
        :class:`~repro.serving.deploy.VersionedStore`) owning the shard map.
    machine:
        The frontend's co-located shard (its fault stream, its clock).
    injector:
        The cluster-wide deterministic fault source.
    clock:
        The frontend's simulated clock; timeouts/backoffs/delays are
        charged here under ``"communication"``.
    byte_scale:
        Wire-dimension byte multiplier (mirrors the frontend's).
    """

    def __init__(
        self,
        store,
        machine: int,
        injector: FaultInjector,
        clock: SimClock,
        byte_scale: float = 1.0,
    ) -> None:
        self.store = store
        self.machine = machine
        self.injector = injector
        self.policy = injector.plan.retry
        self.clock = clock
        self.byte_scale = byte_scale
        #: Current batch index (1-based), set by the frontend before each
        #: dispatch so fault windows line up with serving progress.
        self.iteration = 0
        #: Observability scope, bound by the frontend.
        self.trace = NULL_SCOPE

    # -------------------------------------------------------------- metering

    def meter(self, kind: str, miss_ids: np.ndarray) -> CommRecord:
        """Traffic to pull ``miss_ids`` to this frontend (same accounting
        as :meth:`repro.serving.frontend.ServingFrontend._meter`)."""
        store = self.store.store
        row_bytes = store.row_width(kind) * BYTES_PER_ELEMENT * self.byte_scale
        local_ids, remote_ids = store.split_local_remote(
            kind, miss_ids, self.machine
        )
        remote_shards = store.remote_machine_count(kind, miss_ids, self.machine)
        return CommRecord(
            local_bytes=int(len(local_ids) * row_bytes),
            remote_bytes=int(len(remote_ids) * row_bytes),
            local_messages=1 if len(local_ids) else 0,
            remote_messages=remote_shards,
        )

    def touched_shards(self, kind: str, ids: np.ndarray) -> np.ndarray:
        return np.unique(self.store.store.owners(kind, ids))

    # ----------------------------------------------------------------- pulls

    def pull(self, kind: str, miss_ids: np.ndarray) -> tuple[CommRecord, bool]:
        """Attempt one miss pull through faults: ``(comm, ok)``.

        ``ok=False`` means the retry budget is exhausted — the caller
        times the batch out.  All failed-attempt traffic is already
        merged into ``comm`` (as retransmits) and all waiting time is
        already on the clock.
        """
        comm = CommRecord()
        attempt = 0
        while attempt < self.policy.max_attempts:
            attempt += 1
            if self._attempt_fails(kind, miss_ids):
                self._record_failure(comm, kind, miss_ids, attempt)
                continue
            comm.merge(self.meter(kind, miss_ids))
            self._apply_delay()
            return comm, True
        return comm, False

    # -------------------------------------------------------------- internal

    def _attempt_fails(self, kind: str, ids: np.ndarray) -> bool:
        injector = self.injector
        if injector.plan.outages and injector.ps_unavailable(
            self.touched_shards(kind, ids), self.iteration
        ):
            return True
        return injector.should_drop(self.machine, self.iteration)

    def _record_failure(
        self, comm: CommRecord, kind: str, ids: np.ndarray, attempt: int
    ) -> None:
        wasted = self.meter(kind, ids)
        wasted.retransmit_bytes = wasted.total_bytes
        comm.merge(wasted)
        self.injector.stats.retries += 1
        self.trace.count("rpc.retries")
        backoff = self.policy.backoff(attempt)
        if backoff > 0.0 and self.policy.backoff_jitter > 0.0:
            backoff *= 1.0 + self.policy.backoff_jitter * self.injector.backoff_jitter(
                self.machine
            )
        self._wait(self.policy.timeout + backoff)

    def _wait(self, seconds: float) -> None:
        if seconds <= 0.0:
            return
        self.injector.stats.retry_wait_seconds += seconds
        with self.trace.span("rpc.retry_wait", "communication") as span:
            self.clock.advance(seconds, "communication")
            span.set(seconds=seconds)

    def _apply_delay(self) -> None:
        plan = self.injector.plan
        if not plan.delays:
            return
        extra = self.injector.delay_seconds(self.machine, self.iteration)
        if extra > 0.0:
            self.trace.count("rpc.delays")
            with self.trace.span("rpc.injected_delay", "communication") as span:
                self.clock.advance(extra, "communication")
                span.set(seconds=extra)
