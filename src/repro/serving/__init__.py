"""Hotness-aware KGE serving: checkpoint -> batched, cached inference.

The training side of this repository reproduces HET-KG's hot-embedding
cache; this package closes the loop to a *served* system.  A trained
checkpoint loads into an :class:`EmbeddingStore`, a :class:`QueryBatcher`
micro-batches incoming link-prediction queries, a :class:`ServingCache`
pins the hot rows a query log predicts (reusing the training filter,
Alg. 2), and a :class:`ServingFrontend` replays Zipfian workloads on the
simulated clock to report throughput, p50/p95/p99 latency, and hit ratio.

Quickstart
----------
>>> from repro import TrainingConfig, generate_dataset, make_trainer, split_triples
>>> from repro.serving import (
...     EmbeddingStore, QueryBatcher, ServingCache, ServingFrontend,
...     WorkloadSpec, ZipfianWorkload,
... )
>>> graph = generate_dataset("fb15k", scale=0.02)
>>> trainer = make_trainer("hetkg-d", TrainingConfig(epochs=1))
>>> _ = trainer.train(split_triples(graph, seed=0).train)
>>> store = EmbeddingStore.from_trainer(trainer)
>>> workload = ZipfianWorkload.from_graph(graph, WorkloadSpec(num_queries=200))
>>> log = workload.generate()
>>> cache = ServingCache.from_query_log(log, capacity=64)
>>> report = ServingFrontend(store, cache=cache).run(log)
>>> report.num_queries
200
"""

from repro.serving.batcher import QueryBatcher
from repro.serving.cache import DYNAMIC_POLICIES, ServingCache
from repro.serving.frontend import ServingFrontend
from repro.serving.metrics import ServingReport, latency_percentile
from repro.serving.queries import (
    HEAD_PREDICTION,
    QUERY_KINDS,
    SCORE,
    TAIL_PREDICTION,
    Query,
    QueryLog,
    QueryResult,
)
from repro.serving.store import EmbeddingStore
from repro.serving.workload import WorkloadSpec, ZipfianWorkload, zipf_probabilities

__all__ = [
    "DYNAMIC_POLICIES",
    "EmbeddingStore",
    "HEAD_PREDICTION",
    "QUERY_KINDS",
    "Query",
    "QueryBatcher",
    "QueryLog",
    "QueryResult",
    "SCORE",
    "ServingCache",
    "ServingFrontend",
    "ServingReport",
    "TAIL_PREDICTION",
    "WorkloadSpec",
    "ZipfianWorkload",
    "latency_percentile",
    "zipf_probabilities",
]
