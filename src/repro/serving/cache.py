"""Hotness-aware inference cache.

The same skew that motivates the training cache (Fig. 2) dominates the
inference stream: a small hot set of entities/relations absorbs most
query traffic.  The serving cache keeps that hot set frontend-local so a
hit avoids the pull to the owning shard entirely.

Two variants, mirroring the paper's training-side strategies:

* **static** (CPS-style) — the hot set is computed once from a query-log
  frequency profile with the training code path
  (:func:`repro.cache.filtering.filter_hot_ids`, Alg. 2) and pinned;
  nothing is ever evicted.  The ``entity_ratio`` knob carries over: the
  heterogeneity fix matters at inference too, since every query touches
  a relation row.
* **dynamic** — a reactive eviction policy per table (any non-pinned
  policy registered with :mod:`repro.cache.core`: LRU/LFU/FIFO/CLOCK/
  2Q/ARC), for workloads whose hot set drifts faster than the log can
  be re-profiled.  Capacity is divided between the entity and relation
  tables by the *same* :func:`~repro.cache.filtering.split_slots` rule
  the training filter uses, so the two tiers always agree on the split
  and the slots sum to exactly ``capacity``.

Both variants run on :class:`repro.cache.core.CacheCore` tables, so the
capacity ledger and hit metering are the unified engine's, not
re-implemented here.

The checkpoint-swap story
-------------------------
Serving never writes embeddings, so there is no staleness protocol: a
cached row is exactly the checkpointed row.  After a model swap the
cached *rows* are stale but the *membership* is still the best available
prediction of what is hot.  :meth:`ServingCache.invalidate` therefore
drops all resident rows (``size()`` goes to 0, the next access to each
row misses and re-pulls it from the new checkpoint) but keeps static
memberships as *warming*: each formerly pinned id misses exactly once
and is then re-admitted, so the hit ratio dips for one pass over the hot
set instead of flatlining at zero until a full re-profile.  Dynamic
tables simply restart cold and re-learn.
"""

from __future__ import annotations

import numpy as np

from repro.cache.core import (
    POLICIES,
    CacheCore,
    EvictionStrategy,
    PinnedStrategy,
)
from repro.cache.filtering import HotSet, filter_hot_ids, split_slots
from repro.utils.validation import check_positive

#: Dynamic policy registry for :meth:`ServingCache.dynamic` — every
#: registered core policy except the static pinned one.
DYNAMIC_POLICIES: dict[str, type[EvictionStrategy]] = {
    name: cls for name, cls in POLICIES.items() if name != "pinned"
}


class ServingCache:
    """Frontend-local cache over entity and relation rows.

    Use the constructors :meth:`static`, :meth:`from_query_log`, or
    :meth:`dynamic` rather than ``__init__`` directly.
    """

    def __init__(self, tables: dict[str, CacheCore], label: str) -> None:
        if set(tables) != {"entity", "relation"}:
            raise ValueError(
                f"tables must cover entity and relation, got {sorted(tables)}"
            )
        self._tables = tables
        self.label = label
        self.hits = 0
        self.misses = 0

    # ----------------------------------------------------------- constructors

    @classmethod
    def static(cls, hot_set: HotSet) -> "ServingCache":
        """Pin a pre-computed :class:`~repro.cache.filtering.HotSet`."""
        tables = {}
        for kind, ids in (
            ("entity", hot_set.entities),
            ("relation", hot_set.relations),
        ):
            members = [int(i) for i in ids]
            strategy = PinnedStrategy()
            table = CacheCore(len(members), strategy, label="static")
            strategy.install(members)
            tables[kind] = table
        return cls(tables, label="static")

    @classmethod
    def from_query_log(
        cls,
        log,
        capacity: int,
        entity_ratio: float | None = 0.25,
    ) -> "ServingCache":
        """Profile a :class:`~repro.serving.queries.QueryLog` and pin the
        resulting hot set (the serving analogue of prefetch -> filter)."""
        check_positive("capacity", capacity)
        entity_counts, relation_counts = log.access_counts()
        hot = filter_hot_ids(
            entity_counts, relation_counts, capacity, entity_ratio
        )
        return cls.static(hot)

    @classmethod
    def dynamic(
        cls,
        capacity: int,
        policy: str = "lru",
        entity_ratio: float = 0.25,
    ) -> "ServingCache":
        """Reactive cache: one eviction policy instance per table.

        ``entity_ratio`` splits ``capacity`` between the entity and
        relation tables via :func:`~repro.cache.filtering.split_slots`,
        identically to the static filter — the two slot counts sum to
        exactly ``capacity`` (a zero-slot side never admits).
        """
        check_positive("capacity", capacity)
        try:
            strategy_cls = DYNAMIC_POLICIES[policy]
        except KeyError:
            raise KeyError(
                f"unknown policy {policy!r}; available: {sorted(DYNAMIC_POLICIES)}"
            ) from None
        entity_slots, relation_slots = split_slots(capacity, entity_ratio)
        tables = {
            "entity": CacheCore(entity_slots, strategy_cls(), label=policy),
            "relation": CacheCore(relation_slots, strategy_cls(), label=policy),
        }
        return cls(tables, label=policy)

    # ----------------------------------------------------------------- lookup

    def lookup(self, kind: str, ids: np.ndarray) -> np.ndarray:
        """Boolean hit mask for ``ids`` (dynamic caches admit misses).

        ``ids`` should already be deduplicated by the caller — the
        frontend looks up each distinct row once per batch, matching how
        a real dispatch gathers unique rows.
        """
        ids = np.asarray(ids, dtype=np.int64)
        table = self._tables[kind]
        mask = np.fromiter(
            (table.access(int(i)) for i in ids), dtype=bool, count=len(ids)
        )
        hits = int(mask.sum())
        self.hits += hits
        self.misses += len(ids) - hits
        return mask

    # ------------------------------------------------------------------ stats

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def size(self) -> int:
        """Rows currently resident (pinned or admitted)."""
        return sum(len(t) for t in self._tables.values())

    def table(self, kind: str) -> CacheCore:
        """The backing :class:`~repro.cache.core.CacheCore` for one kind."""
        return self._tables[kind]

    def invalidate(self) -> None:
        """Drop all cached rows after a checkpoint swap.

        Static (pinned) tables keep their membership as *warming*: each
        formerly hot id misses once (re-pulling the fresh row) and is
        re-admitted, so the cache re-warms in one pass instead of staying
        empty forever.  Dynamic tables restart cold.
        """
        for table in self._tables.values():
            if isinstance(table.strategy, PinnedStrategy):
                table.strategy.invalidate_rows()
            else:
                table.clear()

    def rewarmed(self, hot_set: HotSet) -> "ServingCache":
        """Adopt a new hot membership, preserving capacity and policy.

        The cache keeps its configured shape: a static table re-pins the
        new membership (capped to the table's capacity — the hot-set
        arrays are ordered hottest-first, so the cap keeps the hottest
        prefix), a dynamic table clears and pre-admits the capped
        membership through its normal admission path, so the policy's own
        ordering state (recency lists, clock bits, ARC queues) starts
        warm rather than being silently replaced by an uncapped static
        pin.  Cumulative hit/miss counters survive, so mid-run re-warms
        keep the reported hit ratio continuous.

        Returns ``self`` for chaining.
        """
        for kind, ids in (
            ("entity", hot_set.entities),
            ("relation", hot_set.relations),
        ):
            table = self._tables[kind]
            members = [int(i) for i in ids][: table.capacity]
            if isinstance(table.strategy, PinnedStrategy):
                table.strategy.install(members)
            else:
                hits_before, misses_before = table.hits, table.misses
                table.clear()
                for key in members:
                    table.access(key)
                # Pre-admission is background warming, not served traffic:
                # keep the table's own meters where they were.
                table.hits, table.misses = hits_before, misses_before
        return self

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"ServingCache(label={self.label!r}, size={self.size()}, "
            f"hit_ratio={self.hit_ratio:.3f})"
        )
