"""Hotness-aware inference cache.

The same skew that motivates the training cache (Fig. 2) dominates the
inference stream: a small hot set of entities/relations absorbs most
query traffic.  The serving cache keeps that hot set frontend-local so a
hit avoids the pull to the owning shard entirely.

Two variants, mirroring the paper's training-side strategies:

* **static** (CPS-style) — the hot set is computed once from a query-log
  frequency profile with the training code path
  (:func:`repro.cache.filtering.filter_hot_ids`, Alg. 2) and pinned;
  nothing is ever evicted.  The ``entity_ratio`` knob carries over: the
  heterogeneity fix matters at inference too, since every query touches
  a relation row.
* **dynamic** — a reactive eviction policy per table
  (:mod:`repro.cache.policies` LRU/LFU/FIFO/ARC...), for workloads whose
  hot set drifts faster than the log can be re-profiled.

Serving never writes embeddings, so there is no staleness protocol: a
cached row is exactly the checkpointed row.  (Online refresh after a
model swap is future work — the cache only needs ``invalidate()``.)
"""

from __future__ import annotations

import numpy as np

from repro.cache.filtering import HotSet, filter_hot_ids
from repro.cache.policies import (
    ARCCache,
    EvictionPolicy,
    FIFOCache,
    LFUCache,
    LRUCache,
)
from repro.utils.validation import check_positive

#: Dynamic policy registry for :meth:`ServingCache.dynamic`.
DYNAMIC_POLICIES: dict[str, type[EvictionPolicy]] = {
    "lru": LRUCache,
    "lfu": LFUCache,
    "fifo": FIFOCache,
    "arc": ARCCache,
}


class ServingCache:
    """Frontend-local cache over entity and relation rows.

    Use the constructors :meth:`static`, :meth:`from_query_log`, or
    :meth:`dynamic` rather than ``__init__`` directly.
    """

    def __init__(
        self,
        pinned: dict[str, set[int]] | None = None,
        policies: dict[str, EvictionPolicy] | None = None,
        label: str = "static",
    ) -> None:
        if (pinned is None) == (policies is None):
            raise ValueError("provide exactly one of pinned / policies")
        self._pinned = pinned
        self._policies = policies
        self.label = label
        self.hits = 0
        self.misses = 0

    # ----------------------------------------------------------- constructors

    @classmethod
    def static(cls, hot_set: HotSet) -> "ServingCache":
        """Pin a pre-computed :class:`~repro.cache.filtering.HotSet`."""
        pinned = {
            "entity": set(hot_set.entities.tolist()),
            "relation": set(hot_set.relations.tolist()),
        }
        return cls(pinned=pinned, label="static")

    @classmethod
    def from_query_log(
        cls,
        log,
        capacity: int,
        entity_ratio: float | None = 0.25,
    ) -> "ServingCache":
        """Profile a :class:`~repro.serving.queries.QueryLog` and pin the
        resulting hot set (the serving analogue of prefetch -> filter)."""
        check_positive("capacity", capacity)
        entity_counts, relation_counts = log.access_counts()
        hot = filter_hot_ids(
            entity_counts, relation_counts, capacity, entity_ratio
        )
        return cls.static(hot)

    @classmethod
    def dynamic(
        cls,
        capacity: int,
        policy: str = "lru",
        entity_ratio: float = 0.25,
    ) -> "ServingCache":
        """Reactive cache: one eviction policy instance per table.

        ``entity_ratio`` splits ``capacity`` between the entity and
        relation policies, like the static filter's slot split.
        """
        check_positive("capacity", capacity)
        try:
            policy_cls = DYNAMIC_POLICIES[policy]
        except KeyError:
            raise KeyError(
                f"unknown policy {policy!r}; available: {sorted(DYNAMIC_POLICIES)}"
            ) from None
        entity_slots = max(1, int(round(capacity * entity_ratio)))
        relation_slots = max(1, capacity - entity_slots)
        policies = {
            "entity": policy_cls(entity_slots),
            "relation": policy_cls(relation_slots),
        }
        return cls(policies=policies, label=policy)

    # ----------------------------------------------------------------- lookup

    def lookup(self, kind: str, ids: np.ndarray) -> np.ndarray:
        """Boolean hit mask for ``ids`` (dynamic caches admit misses).

        ``ids`` should already be deduplicated by the caller — the
        frontend looks up each distinct row once per batch, matching how
        a real dispatch gathers unique rows.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if self._pinned is not None:
            members = self._pinned[kind]
            mask = np.fromiter(
                (int(i) in members for i in ids), dtype=bool, count=len(ids)
            )
        else:
            policy = self._policies[kind]
            mask = np.fromiter(
                (policy.access(int(i)) for i in ids), dtype=bool, count=len(ids)
            )
        hits = int(mask.sum())
        self.hits += hits
        self.misses += len(ids) - hits
        return mask

    # ------------------------------------------------------------------ stats

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def size(self) -> int:
        """Rows currently resident (pinned or admitted)."""
        if self._pinned is not None:
            return sum(len(s) for s in self._pinned.values())
        return sum(len(p) for p in self._policies.values())

    def invalidate(self) -> None:
        """Drop all cached rows (e.g. after a checkpoint swap)."""
        if self._pinned is not None:
            for members in self._pinned.values():
                members.clear()
        else:
            for kind, policy in list(self._policies.items()):
                fresh = type(policy)(policy.capacity)
                self._policies[kind] = fresh

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"ServingCache(label={self.label!r}, size={self.size()}, "
            f"hit_ratio={self.hit_ratio:.3f})"
        )
