"""Synthetic inference workload generation.

Produces Zipfian query streams: entity/relation popularity follows a
power law, the defining property of real KG query traffic (and the same
skew the training-side Fig. 2 analysis measures).  The generator can be
*calibrated* from a knowledge graph so that the entities that were hot
during training — via :func:`repro.kg.stats.access_frequencies` — are
also the hot query anchors, which is what makes a log-profiled static
hot set transfer to the live stream.

Arrivals are a Poisson process (exponential inter-arrival times) at a
configurable rate, so the latency distribution under micro-batching is
non-trivial: bursts fill batches, lulls leave stragglers to the
``max_wait`` timeout.

Everything is deterministic under ``spec.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.stats import access_frequencies
from repro.serving.queries import (
    HEAD_PREDICTION,
    SCORE,
    TAIL_PREDICTION,
    Query,
    QueryLog,
)
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class WorkloadSpec:
    """Knobs of one synthetic query stream.

    Parameters
    ----------
    num_queries:
        Stream length.
    arrival_rate:
        Mean arrival rate in queries per simulated second.
    zipf_exponent:
        Skew ``s`` of the popularity law ``p(rank) ~ 1 / rank^s``.
        ``~1.05-1.2`` matches measured KG/embedding traffic; ``0``
        degenerates to uniform (the cache-hostile control).
    mix:
        Probability of (score, tail-prediction, head-prediction) kinds.
    num_candidates:
        Candidate-set size for prediction queries.
    seed:
        Master seed; two generators with equal specs emit identical logs.
    """

    num_queries: int = 1000
    arrival_rate: float = 2000.0
    zipf_exponent: float = 1.1
    mix: tuple[float, float, float] = (0.5, 0.3, 0.2)
    num_candidates: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_queries", self.num_queries)
        check_positive("arrival_rate", self.arrival_rate)
        if self.zipf_exponent < 0:
            raise ValueError(
                f"zipf_exponent must be non-negative, got {self.zipf_exponent}"
            )
        if len(self.mix) != 3 or any(m < 0 for m in self.mix) or sum(self.mix) <= 0:
            raise ValueError(f"mix must be three non-negative weights, got {self.mix}")
        check_positive("num_candidates", self.num_candidates)


def zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf pmf over ranks ``0..n-1`` (rank 0 hottest)."""
    check_positive("n", n)
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), exponent)
    return weights / weights.sum()


class ZipfianWorkload:
    """Deterministic Zipfian query stream over one embedding geometry.

    Parameters
    ----------
    num_entities, num_relations:
        Id spaces the queries draw from.
    spec:
        The workload knobs.
    entity_order, relation_order:
        Rank -> id maps, hottest first.  Defaults to a seed-derived
        random permutation; :meth:`from_graph` calibrates them from the
        graph's training-time access frequencies instead.
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        spec: WorkloadSpec | None = None,
        entity_order: np.ndarray | None = None,
        relation_order: np.ndarray | None = None,
    ) -> None:
        check_positive("num_entities", num_entities)
        check_positive("num_relations", num_relations)
        self.spec = spec if spec is not None else WorkloadSpec()
        order_rng = make_rng(self.spec.seed ^ 0x5EED)
        if entity_order is None:
            entity_order = order_rng.permutation(num_entities)
        if relation_order is None:
            relation_order = order_rng.permutation(num_relations)
        self.entity_order = np.asarray(entity_order, dtype=np.int64)
        self.relation_order = np.asarray(relation_order, dtype=np.int64)
        if len(self.entity_order) != num_entities:
            raise ValueError("entity_order must cover every entity id")
        if len(self.relation_order) != num_relations:
            raise ValueError("relation_order must cover every relation id")
        self.num_entities = num_entities
        self.num_relations = num_relations
        self._entity_p = zipf_probabilities(num_entities, self.spec.zipf_exponent)
        self._relation_p = zipf_probabilities(num_relations, self.spec.zipf_exponent)

    # ----------------------------------------------------------- construction

    @classmethod
    def from_graph(
        cls, graph: KnowledgeGraph, spec: WorkloadSpec | None = None
    ) -> "ZipfianWorkload":
        """Calibrate popularity order from the graph's access skew.

        The hottest training-time ids (by :func:`access_frequencies`)
        become the hottest query anchors — serving traffic concentrates
        on the same celebrities the training epochs did.
        """
        ent_counts, rel_counts = access_frequencies(graph)
        entity_order = np.lexsort((np.arange(len(ent_counts)), -ent_counts))
        relation_order = np.lexsort((np.arange(len(rel_counts)), -rel_counts))
        return cls(
            graph.num_entities,
            graph.num_relations,
            spec,
            entity_order=entity_order,
            relation_order=relation_order,
        )

    # ------------------------------------------------------------- generation

    def hot_entities(self, fraction: float) -> np.ndarray:
        """The hottest ``fraction`` of entity ids (for sizing hot sets)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        k = max(1, int(round(self.num_entities * fraction)))
        return self.entity_order[:k].copy()

    def _sample_entities(self, rng: np.random.Generator, size: int) -> np.ndarray:
        ranks = rng.choice(self.num_entities, size=size, p=self._entity_p)
        return self.entity_order[ranks]

    def _sample_relations(self, rng: np.random.Generator, size: int) -> np.ndarray:
        ranks = rng.choice(self.num_relations, size=size, p=self._relation_p)
        return self.relation_order[ranks]

    def generate(
        self, num_queries: int | None = None, start_time: float = 0.0
    ) -> QueryLog:
        """Emit a fresh deterministic stream of ``num_queries`` queries.

        Successive calls restart the stream (same seed, same queries) —
        generate once and slice for warmup/measure splits.
        """
        spec = self.spec
        n = spec.num_queries if num_queries is None else num_queries
        check_positive("num_queries", n)
        rng = make_rng(spec.seed)
        mix = np.asarray(spec.mix, dtype=np.float64)
        mix = mix / mix.sum()
        kinds = rng.choice(3, size=n, p=mix)
        arrivals = start_time + np.cumsum(
            rng.exponential(1.0 / spec.arrival_rate, size=n)
        )
        heads = self._sample_entities(rng, n)
        tails = self._sample_entities(rng, n)
        relations = self._sample_relations(rng, n)
        candidates = self._sample_entities(rng, n * spec.num_candidates).reshape(
            n, spec.num_candidates
        )

        queries = []
        kind_names = (SCORE, TAIL_PREDICTION, HEAD_PREDICTION)
        for i in range(n):
            kind = kind_names[kinds[i]]
            cand = () if kind == SCORE else tuple(candidates[i].tolist())
            queries.append(
                Query(
                    qid=i,
                    kind=kind,
                    head=int(heads[i]),
                    relation=int(relations[i]),
                    tail=int(tails[i]),
                    arrival=float(arrivals[i]),
                    candidates=cand,
                )
            )
        return QueryLog(queries)
