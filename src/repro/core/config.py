"""Training configuration — the single source of every hyperparameter.

Defaults follow the paper's Table II where feasible at simulation scale
(embedding dimension is reduced from 400 since NumPy on one box replaces a
32-core cluster; all compared systems always share one config, so ratios
are unaffected).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.utils.validation import (
    check_fraction,
    check_in,
    check_positive,
)


@dataclass
class TrainingConfig:
    """Hyperparameters for one distributed KGE training run.

    Model / objective
    -----------------
    model: score function name (``"transe"``, ``"distmult"``, ...).
    dim: base embedding dimension ``d``.
    loss: ``"ranking"`` (margin), ``"logistic"``, or
        ``"self-adversarial"`` (RotatE-style weighted negatives, extension).
    margin: ranking-loss margin ``gamma``.

    Optimization
    ------------
    lr: AdaGrad learning rate (paper: 0.1).
    optimizer: ``"adagrad"`` (paper) or ``"sgd"``.
    batch_size: positives per mini-batch ``b``.
    num_negatives: corruptions per positive ``b_n``.
    negative_strategy: ``"chunked"`` (PBG/DGL-KE style) or ``"independent"``.
    negative_chunk: positives sharing one negative set ``b_c``.
    filter_false_negatives: resample corruptions that hit true triples.
    epochs: training epochs.

    Hard-negative cache (repro.sampling.cache, NSCaching-style)
    -----------------------------------------------------------
    neg_cache: ``"off"`` (plain uniform corruption, the default —
        bit-identical to the pre-cache trainer), ``"nscaching"`` (warm
        keys draw all negatives from their hard-negative cache), or
        ``"auto"`` (the cache-draw probability anneals from exploration
        to exploitation over ``neg_cache_anneal`` batches).
    neg_cache_size: hard negatives cached per (entity, relation,
        direction) key (NSCaching's ``N1``).
    neg_cache_pool: fresh uniform candidates scored per key refresh
        (``N2``; the scored pool is cache ∪ pool).
    neg_cache_refresh: worker steps between refresh events.
    neg_cache_keys: hottest pending keys refreshed per event (the
        hotness-aware refresh budget).
    neg_cache_temperature: Gumbel top-k temperature over candidate
        scores (lower = closer to exact top-k).
    neg_cache_anneal: ``"auto"`` mode's exploration->exploitation ramp
        length in batches.

    Cluster
    -------
    num_machines: simulated machines (1 worker + 1 server shard each).
    partitioner: ``"metis"`` or ``"random"``.
    bandwidth / latency: remote network model parameters.
    compute_throughput: worker compute model (element-ops/second).
    wire_dim: embedding dimension the *cost models* assume (the paper's
        d = 400).  The trained dimension stays ``dim`` for tractability;
        bytes-on-the-wire and scoring flops are scaled by ``wire_dim/dim``
        so simulated times reflect paper-scale embeddings.  ``None`` makes
        the cost models use the actual ``dim``.
    pbg_partitions: number of entity partitions in the PBG baseline's
        preprocessing — fixed independent of worker count, as in PBG
        itself (its lock server allows at most floor(P/2) concurrent
        buckets, which is what bounds PBG's scalability in Fig. 6).
    compression: lossy wire codec for remote PS traffic (``"none"``,
        ``"fp16"``, ``"int8"``) — an extension beyond the paper; see
        :mod:`repro.ps.compression`.
    machine_speeds: optional per-machine relative compute speeds (length
        ``num_machines``; 1.0 = nominal).  Models heterogeneous clusters /
        stragglers: a 0.5 entry halves that machine's compute throughput.

    Tiered backing (repro.tier)
    ---------------------------
    backing: ``"resident"`` (default, dense in-memory tables — bit-identical
        to the pre-tiering trainer) or ``"tiered"`` (hot/warm/cold row
        store under a byte budget; see :mod:`repro.tier` and
        ``docs/memory.md``).
    memory_budget: resident-byte budget for the tiered backing — an int, a
        size string (``"64M"``), or ``None`` for unlimited.  Requires
        ``backing="tiered"``.
    tier_block_rows: rows per residency block (promotion granularity).
    tier_cold_codec: quantizer for long-idle blocks (``"none"``, ``"fp16"``,
        ``"int8"``); ``"none"`` keeps every non-hot block exact.
    tier_dir: scratch directory for the memmap shards (``None`` = private
        temp dir, removed on close).

    Hot-embedding cache (HET-KG only)
    ---------------------------------
    cache_strategy: ``"cps"``, ``"dps"``, ``"adaptive"`` (drift-triggered
        DPS, see :mod:`repro.stream.drift`), or ``"none"`` (DGL-KE).
    cache_capacity: total cached rows per worker (entities + relations).
    entity_ratio: fraction of slots for entities; ``None`` disables the
        heterogeneity fix (HET-KG-N of Table VII).
    sync_period: ``P`` — cache refresh period bounding staleness.
    dps_window: ``D`` — DPS prefetch window in iterations (also the
        observation window of the ADAPTIVE strategy).
    adaptive_threshold: ADAPTIVE rebuilds when the Jaccard overlap between
        the current window's hot set and the cache membership falls below
        this value (or the hit-ratio EWMA drops; see
        :class:`repro.stream.drift.DriftDetector`).
    adaptive_decay: per-window decay of ADAPTIVE's accumulated hotness
        counts (0 = only the latest window, 1 = never forget).

    seed: master seed for all randomness.
    """

    # model / objective
    model: str = "transe"
    dim: int = 16
    loss: str = "ranking"
    margin: float = 1.0

    # optimization
    lr: float = 0.1
    optimizer: str = "adagrad"
    batch_size: int = 32
    num_negatives: int = 8
    negative_strategy: str = "chunked"
    negative_chunk: int = 16
    filter_false_negatives: bool = False
    epochs: int = 5

    # hard-negative cache (repro.sampling.cache)
    neg_cache: str = "off"
    neg_cache_size: int = 8
    neg_cache_pool: int = 16
    neg_cache_refresh: int = 4
    neg_cache_keys: int = 64
    neg_cache_temperature: float = 0.5
    neg_cache_anneal: int = 256

    # cluster
    num_machines: int = 4
    partitioner: str = "metis"
    bandwidth: float = 125e6
    latency: float = 2e-4
    compute_throughput: float = 2e9
    wire_dim: int | None = 400
    pbg_partitions: int = 4
    compression: str = "none"
    machine_speeds: tuple[float, ...] | None = None

    # hot-embedding cache
    cache_strategy: str = "none"
    cache_capacity: int = 512
    entity_ratio: float | None = 0.25
    sync_period: int = 8
    dps_window: int = 32
    adaptive_threshold: float = 0.65
    adaptive_decay: float = 0.5

    # tiered backing
    backing: str = "resident"
    memory_budget: int | str | None = None
    tier_block_rows: int = 64
    tier_cold_codec: str = "int8"
    tier_dir: str | None = None

    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("dim", self.dim)
        check_positive("lr", self.lr)
        check_positive("batch_size", self.batch_size)
        check_positive("num_negatives", self.num_negatives)
        check_positive("negative_chunk", self.negative_chunk)
        check_positive("epochs", self.epochs)
        check_positive("num_machines", self.num_machines)
        check_positive("cache_capacity", self.cache_capacity)
        check_positive("sync_period", self.sync_period)
        check_positive("dps_window", self.dps_window)
        check_positive("margin", self.margin)
        check_in("loss", self.loss, ("ranking", "logistic", "self-adversarial"))
        check_in("optimizer", self.optimizer, ("adagrad", "sgd"))
        check_in(
            "negative_strategy", self.negative_strategy, ("chunked", "independent")
        )
        check_in("neg_cache", self.neg_cache, ("off", "nscaching", "auto"))
        check_positive("neg_cache_size", self.neg_cache_size)
        check_positive("neg_cache_pool", self.neg_cache_pool)
        check_positive("neg_cache_refresh", self.neg_cache_refresh)
        check_positive("neg_cache_keys", self.neg_cache_keys)
        check_positive("neg_cache_temperature", self.neg_cache_temperature)
        check_positive("neg_cache_anneal", self.neg_cache_anneal)
        check_in("partitioner", self.partitioner, ("metis", "random"))
        check_in(
            "cache_strategy",
            self.cache_strategy,
            ("cps", "dps", "adaptive", "none"),
        )
        check_fraction("adaptive_threshold", self.adaptive_threshold)
        check_fraction("adaptive_decay", self.adaptive_decay)
        if self.entity_ratio is not None:
            check_fraction("entity_ratio", self.entity_ratio)
        if self.wire_dim is not None:
            check_positive("wire_dim", self.wire_dim)
        check_positive("pbg_partitions", self.pbg_partitions)
        check_in("compression", self.compression, ("none", "fp16", "int8"))
        check_in("backing", self.backing, ("resident", "tiered"))
        check_positive("tier_block_rows", self.tier_block_rows)
        check_in(
            "tier_cold_codec", self.tier_cold_codec, ("none", "fp16", "int8")
        )
        if self.memory_budget is not None:
            if self.backing != "tiered":
                raise ValueError(
                    "memory_budget requires backing='tiered' "
                    f"(got backing={self.backing!r})"
                )
            # Fail fast on malformed size strings; the store re-parses later.
            from repro.tier.budget import parse_bytes

            parse_bytes(self.memory_budget)
        if self.machine_speeds is not None:
            if len(self.machine_speeds) != self.num_machines:
                raise ValueError(
                    f"machine_speeds has {len(self.machine_speeds)} entries "
                    f"for {self.num_machines} machines"
                )
            for speed in self.machine_speeds:
                check_positive("machine_speeds entry", speed)

    def speed_of(self, machine: int) -> float:
        """Relative compute speed of ``machine`` (1.0 when homogeneous)."""
        if self.machine_speeds is None:
            return 1.0
        return self.machine_speeds[machine]

    @property
    def cost_dim(self) -> int:
        """Embedding dimension the cost models charge for."""
        return self.wire_dim if self.wire_dim is not None else self.dim

    @property
    def byte_scale(self) -> float:
        """Multiplier turning actual row bytes into wire bytes."""
        return self.cost_dim / self.dim

    def with_overrides(self, **kwargs) -> "TrainingConfig":
        """A copy with some fields replaced (re-validated)."""
        return replace(self, **kwargs)

    @property
    def uses_cache(self) -> bool:
        return self.cache_strategy != "none"

    @property
    def uses_neg_cache(self) -> bool:
        return self.neg_cache != "off"
