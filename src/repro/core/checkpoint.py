"""Checkpointing: save and restore a trainer's embedding state.

Long Freebase-scale runs need restartability.  A checkpoint captures the
global embedding tables, the server-side AdaGrad accumulators, and enough
config metadata to refuse restoring into an incompatible trainer.  The
format is a single ``.npz`` archive.

Writes are **atomic**: the archive is staged to a temporary file in the
destination directory and moved into place with :func:`os.replace`, so a
crash mid-save (the exact scenario the fault-injection layer exercises)
can never leave a corrupt or partial checkpoint — the previous one, if
any, survives intact.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings

import numpy as np

from repro.core.trainer import HETKGTrainer
from repro.optim.adagrad import SparseAdagrad

#: Bump when the archive layout changes.
FORMAT_VERSION = 1


def save_checkpoint(trainer: HETKGTrainer, path: str | os.PathLike[str]) -> None:
    """Write the trainer's global state to ``path`` (.npz), atomically.

    The trainer must be set up (tables exist).  Worker-local cache contents
    are deliberately *not* saved: they are derived state and are rebuilt by
    prefetch/filter on restart, exactly as in the paper's workflow.
    """
    if trainer.server is None:
        raise RuntimeError("trainer has no state yet; call setup() or train()")
    store = trainer.server.store
    meta = {
        "format_version": FORMAT_VERSION,
        "model": trainer.config.model,
        "dim": trainer.config.dim,
        "num_entities": len(store.table("entity")),
        "num_relations": len(store.table("relation")),
    }
    arrays = {
        "entity_table": store.table("entity"),
        "relation_table": store.table("relation"),
        "meta_json": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    }
    optimizer = trainer.server.optimizer
    if isinstance(optimizer, SparseAdagrad):
        for name, acc in optimizer._accumulators.items():
            arrays[f"adagrad_{name}"] = acc

    # Stage in the same directory (same filesystem) so os.replace is an
    # atomic rename; a crash between write and replace leaves only a
    # stray ``.tmp`` file, never a truncated archive at ``path``.
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            # np.savez on a file object does not append ".npz" to anything.
            np.savez(f, **arrays)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(trainer: HETKGTrainer, path: str | os.PathLike[str]) -> None:
    """Restore a checkpoint into a set-up trainer, in place.

    Raises ``ValueError`` when the checkpoint's model geometry (or any
    restored optimizer state's shape) does not match the trainer's.  Warns
    when the checkpoint carries AdaGrad accumulators but the trainer's
    optimizer cannot use them (they would otherwise be dropped silently,
    changing the effective learning-rate schedule after a resume).
    """
    if trainer.server is None:
        raise RuntimeError("set up the trainer (setup()/train()) before loading")
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format {meta.get('format_version')} is not "
                f"supported (expected {FORMAT_VERSION})"
            )
        store = trainer.server.store
        for field in ("model", "dim"):
            expected = getattr(trainer.config, field)
            if meta[field] != expected:
                raise ValueError(
                    f"checkpoint {field}={meta[field]!r} does not match "
                    f"trainer {field}={expected!r}"
                )
        for kind, key in (("entity", "num_entities"), ("relation", "num_relations")):
            if meta[key] != len(store.table(kind)):
                raise ValueError(
                    f"checkpoint has {meta[key]} {kind} rows, trainer has "
                    f"{len(store.table(kind))}"
                )
        accumulator_keys = [k for k in data.files if k.startswith("adagrad_")]
        optimizer = trainer.server.optimizer
        if accumulator_keys and not isinstance(optimizer, SparseAdagrad):
            warnings.warn(
                "checkpoint carries AdaGrad accumulator state but the "
                f"trainer's optimizer is {type(optimizer).__name__}; the "
                "accumulators are ignored and the optimizer resumes cold",
                RuntimeWarning,
                stacklevel=2,
            )
        # Validate accumulator shapes against the live tables *before*
        # mutating anything, so a bad archive cannot leave the trainer
        # half-restored (and the error names the mismatch instead of a
        # later broadcast crash inside the optimizer).
        if isinstance(optimizer, SparseAdagrad):
            for name in ("entity", "relation"):
                key = f"adagrad_{name}"
                if key in data and data[key].shape != store.table(name).shape:
                    raise ValueError(
                        f"checkpoint {key} has shape {data[key].shape}, but "
                        f"the live {name} table is {store.table(name).shape}"
                    )
        store.table("entity")[:] = data["entity_table"]
        store.table("relation")[:] = data["relation_table"]
        if isinstance(optimizer, SparseAdagrad):
            optimizer.reset()
            for name in ("entity", "relation"):
                key = f"adagrad_{name}"
                if key in data:
                    optimizer._accumulators[name] = data[key].copy()
