"""Checkpointing: save and restore a trainer's embedding state.

Long Freebase-scale runs need restartability.  A checkpoint captures the
global embedding tables, the server-side AdaGrad accumulators, and enough
config metadata to refuse restoring into an incompatible trainer.  The
format is a single ``.npz`` archive.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.trainer import HETKGTrainer
from repro.optim.adagrad import SparseAdagrad

#: Bump when the archive layout changes.
FORMAT_VERSION = 1


def save_checkpoint(trainer: HETKGTrainer, path: str | os.PathLike[str]) -> None:
    """Write the trainer's global state to ``path`` (.npz).

    The trainer must be set up (tables exist).  Worker-local cache contents
    are deliberately *not* saved: they are derived state and are rebuilt by
    prefetch/filter on restart, exactly as in the paper's workflow.
    """
    if trainer.server is None:
        raise RuntimeError("trainer has no state yet; call setup() or train()")
    store = trainer.server.store
    meta = {
        "format_version": FORMAT_VERSION,
        "model": trainer.config.model,
        "dim": trainer.config.dim,
        "num_entities": len(store.table("entity")),
        "num_relations": len(store.table("relation")),
    }
    arrays = {
        "entity_table": store.table("entity"),
        "relation_table": store.table("relation"),
        "meta_json": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    }
    optimizer = trainer.server.optimizer
    if isinstance(optimizer, SparseAdagrad):
        for name, acc in optimizer._accumulators.items():
            arrays[f"adagrad_{name}"] = acc
    np.savez(path, **arrays)


def load_checkpoint(trainer: HETKGTrainer, path: str | os.PathLike[str]) -> None:
    """Restore a checkpoint into a set-up trainer, in place.

    Raises ``ValueError`` when the checkpoint's model geometry does not
    match the trainer's.
    """
    if trainer.server is None:
        raise RuntimeError("set up the trainer (setup()/train()) before loading")
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format {meta.get('format_version')} is not "
                f"supported (expected {FORMAT_VERSION})"
            )
        store = trainer.server.store
        for field, kind in (("model", None), ("dim", None)):
            expected = getattr(trainer.config, field)
            if meta[field] != expected:
                raise ValueError(
                    f"checkpoint {field}={meta[field]!r} does not match "
                    f"trainer {field}={expected!r}"
                )
        for kind, key in (("entity", "num_entities"), ("relation", "num_relations")):
            if meta[key] != len(store.table(kind)):
                raise ValueError(
                    f"checkpoint has {meta[key]} {kind} rows, trainer has "
                    f"{len(store.table(kind))}"
                )
        store.table("entity")[:] = data["entity_table"]
        store.table("relation")[:] = data["relation_table"]
        optimizer = trainer.server.optimizer
        if isinstance(optimizer, SparseAdagrad):
            optimizer.reset()
            for name in ("entity", "relation"):
                key = f"adagrad_{name}"
                if key in data:
                    optimizer._accumulators[name] = data[key].copy()
