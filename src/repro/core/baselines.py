"""Reimplementations of the paper's baseline systems.

* :class:`DGLKETrainer` — DGL-KE's training loop (§III-B): the identical
  co-located PS machinery as HET-KG with the hot-embedding cache disabled,
  so every batch pulls all of its embeddings from the parameter server.
* :class:`PBGTrainer` — PyTorch-BigGraph's block-based loop (§III-B):
  entities are partitioned into buckets that are swapped in and out of
  workers wholesale, entity updates are purely local, and **relation
  embeddings are treated as dense model weights** synchronised through a
  shared parameter server every batch — the design decision the paper
  blames for PBG's communication volume (Fig. 7).

Both baselines share HET-KG's gradient math (:mod:`repro.core.compute`),
cost models, and evaluation, so measured differences come only from how
each system moves embeddings.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.compute import compute_batch_gradients
from repro.core.config import TrainingConfig
from repro.core.convergence import HistoryPoint, TrainingHistory
from repro.core.evaluation import LinkPredictionResult, evaluate_link_prediction
from repro.core.trainer import HETKGTrainer, TrainResult
from repro.kg.graph import KnowledgeGraph
from repro.models.base import get_model
from repro.models.losses import get_loss
from repro.optim import get_optimizer
from repro.partition.random_partition import RandomPartitioner
from repro.ps.network import (
    BYTES_PER_ELEMENT,
    CommRecord,
    ComputeModel,
    NetworkModel,
)
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import NegativeSampler
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.simclock import SimClock


class DGLKETrainer(HETKGTrainer):
    """DGL-KE: parameter-server training without hot-embedding caches."""

    system_name = "DGL-KE"

    def __init__(self, config: TrainingConfig) -> None:
        super().__init__(config.with_overrides(cache_strategy="none"))


class PBGTrainer:
    """PyTorch-BigGraph: block-partitioned training with dense relations.

    The simulation follows the four steps of §III-B:

    1. entities are split into ``config.pbg_partitions`` random partitions
       (a fixed preprocessing choice, independent of worker count) and
       triples are grouped into ``(head part, tail part)`` buckets;
    2. a worker acquiring a bucket loads both entity partitions over the
       network (the shared-filesystem swap) and writes them back when done;
    3. batches inside a bucket update entity embeddings locally, with
       negatives drawn from the bucket's own partitions;
    4. relation embeddings are dense model weights: every batch exchanges
       the *full* relation table with the shared parameter server.

    The lock server is modelled through partition leases: a bucket cannot
    start until both of its entity partitions are free, so at most
    ``floor(P/2)`` buckets run concurrently — PBG's documented parallelism
    bound, and the reason the paper finds its scalability limited (Fig. 6).
    Waiting time is charged as communication (coordination overhead).
    """

    system_name = "PBG"

    def __init__(self, config: TrainingConfig) -> None:
        self.config = config
        self.model = get_model(config.model, config.dim)
        self.loss = get_loss(config.loss, config.margin)
        self.network = NetworkModel(
            bandwidth=config.bandwidth, latency=config.latency
        )
        self.compute = ComputeModel(throughput=config.compute_throughput)
        self._rng = make_rng(config.seed)
        self.entity_table: np.ndarray | None = None
        self.relation_table: np.ndarray | None = None
        self._entity_part: np.ndarray | None = None
        self._buckets: dict[tuple[int, int], np.ndarray] = {}
        self._clocks: list[SimClock] = []

    # ------------------------------------------------------------------ setup

    def setup(self, train_graph: KnowledgeGraph) -> None:
        if self.entity_table is not None:
            return
        cfg = self.config
        self.num_partitions = min(cfg.pbg_partitions, train_graph.num_entities)
        partition = RandomPartitioner(seed=self._rng).partition(
            train_graph, self.num_partitions
        )
        self._entity_part = partition.entity_part
        buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
        for idx, (h, _, t) in enumerate(train_graph.triples):
            key = (
                int(partition.entity_part[h]),
                int(partition.entity_part[t]),
            )
            buckets[key].append(idx)
        self._buckets = {
            key: np.asarray(v, dtype=np.int64) for key, v in buckets.items()
        }
        self.entity_table = self.model.init_entities(
            train_graph.num_entities, self._rng
        )
        self.relation_table = self.model.init_relations(
            train_graph.num_relations, self._rng
        )
        self._entity_opt = get_optimizer(cfg.optimizer, cfg.lr)
        self._relation_opt = get_optimizer(cfg.optimizer, cfg.lr)
        self._clocks = [SimClock() for _ in range(cfg.num_machines)]

    # ------------------------------------------------------------------ train

    def _swap_cost(self, parts: tuple[int, int]) -> CommRecord:
        """Bytes to load (or save) the bucket's entity partitions."""
        assert self._entity_part is not None
        counts = np.bincount(self._entity_part, minlength=self.num_partitions)
        unique_parts = set(parts)
        rows = int(sum(counts[p] for p in unique_parts))
        row_bytes = (
            self.model.entity_dim * BYTES_PER_ELEMENT * self.config.byte_scale
        )
        return CommRecord(
            remote_bytes=int(rows * row_bytes),
            remote_messages=len(unique_parts),
        )

    def _dense_relation_cost(self) -> CommRecord:
        """Per-batch full relation-table pull + gradient push."""
        assert self.relation_table is not None
        bytes_one_way = int(
            self.relation_table.size * BYTES_PER_ELEMENT * self.config.byte_scale
        )
        return CommRecord(remote_bytes=2 * bytes_one_way, remote_messages=2)

    def _train_bucket(
        self,
        train_graph: KnowledgeGraph,
        key: tuple[int, int],
        triple_idx: np.ndarray,
        clock: SimClock,
        rng: np.random.Generator,
    ) -> list[float]:
        assert self.entity_table is not None and self.relation_table is not None
        assert self._entity_part is not None
        cfg = self.config

        clock.advance(self.network.charge(self._swap_cost(key)), "communication")

        pool_mask = np.isin(
            self._entity_part, np.unique(np.asarray(key, dtype=np.int64))
        )
        pool = np.nonzero(pool_mask)[0]
        subgraph = train_graph.subgraph(triple_idx)
        neg = NegativeSampler(
            num_entities=train_graph.num_entities,
            num_negatives=cfg.num_negatives,
            strategy=cfg.negative_strategy,
            chunk_size=cfg.negative_chunk,
            entity_pool=pool,
            seed=rng,
        )
        sampler = EpochSampler(subgraph, cfg.batch_size, neg, seed=rng)

        losses = []
        for batch in sampler.epoch():
            ent_ids = batch.unique_entities()
            rel_ids = batch.unique_relations()
            grads = compute_batch_gradients(
                self.model,
                self.loss,
                batch,
                ent_ids,
                self.entity_table[ent_ids],
                rel_ids,
                self.relation_table[rel_ids],
            )
            clock.advance(
                self.compute.batch_time(grads.num_scores, self.config.cost_dim),
                "compute",
            )
            # Entities: in-memory partition copy, no communication.
            self._entity_opt.update(
                "entity", self.entity_table, grads.entity_ids, grads.entity_grads
            )
            # Relations: dense weights through the shared parameter server.
            self._relation_opt.update(
                "relation",
                self.relation_table,
                grads.relation_ids,
                grads.relation_grads,
            )
            clock.advance(
                self.network.charge(self._dense_relation_cost()),
                "communication",
            )
            losses.append(grads.loss)

        # Save the partitions back to the shared filesystem.
        clock.advance(self.network.charge(self._swap_cost(key)), "communication")
        return losses

    def train(
        self,
        train_graph: KnowledgeGraph,
        eval_graph: KnowledgeGraph | None = None,
        filter_set: set[tuple[int, int, int]] | None = None,
        eval_every: int | None = None,
        eval_max_queries: int = 200,
        eval_candidates: int | None = 500,
    ) -> TrainResult:
        """Run ``config.epochs`` sweeps over all buckets."""
        self.setup(train_graph)
        cfg = self.config
        history = TrainingHistory()
        bucket_rngs = spawn_rngs(self._rng, max(1, len(self._buckets)))

        # Per-call accounting snapshot (see HETKGTrainer.train): repeated
        # train() calls must not report the previous call's traffic/time.
        comm_base = self.network.totals.copy()
        clock_base = [c.copy() for c in self._clocks]

        ordered = sorted(self._buckets.items())
        # Lock-server state: the simulated time at which each entity
        # partition becomes free for the next bucket that needs it.  The
        # lease timeline is *per call* (clocks persist across train()
        # calls, so absolute elapsed values would carry skew from the
        # previous call into this one's waiting pattern).
        part_ready = [0.0] * self.num_partitions
        for epoch in range(1, cfg.epochs + 1):
            losses: list[float] = []
            for i, (key, idx) in enumerate(ordered):
                machine = i % cfg.num_machines
                clock = self._clocks[machine]
                rel = clock.elapsed - clock_base[machine].elapsed
                ready = max(part_ready[p] for p in set(key))
                if ready > rel:
                    clock.advance(ready - rel, "communication")
                losses.extend(
                    self._train_bucket(
                        train_graph, key, idx, clock, bucket_rngs[i]
                    )
                )
                for p in set(key):
                    part_ready[p] = clock.elapsed - clock_base[machine].elapsed
            metrics: dict[str, float] = {}
            is_last = epoch == cfg.epochs
            due = eval_every is not None and epoch % eval_every == 0
            if eval_graph is not None and (due or is_last):
                result = self.evaluate(
                    eval_graph,
                    filter_set=filter_set,
                    max_queries=eval_max_queries,
                    num_candidates=eval_candidates,
                )
                metrics = {
                    "mrr": result.mrr,
                    "mr": result.mr,
                    **{f"hits@{k}": v for k, v in result.hits.items()},
                }
            history.append(
                HistoryPoint(
                    epoch=epoch,
                    sim_time=max(
                        c.elapsed - base.elapsed
                        for c, base in zip(self._clocks, clock_base)
                    ),
                    loss=float(np.mean(losses)) if losses else 0.0,
                    metrics=metrics,
                )
            )

        slowest_i = max(
            range(len(self._clocks)),
            key=lambda i: self._clocks[i].elapsed - clock_base[i].elapsed,
        )
        slowest, base = self._clocks[slowest_i], clock_base[slowest_i]
        return TrainResult(
            config=cfg,
            system=self.system_name,
            history=history,
            sim_time=slowest.elapsed - base.elapsed,
            compute_time=slowest.category("compute") - base.category("compute"),
            communication_time=slowest.category("communication")
            - base.category("communication"),
            comm_totals=self.network.totals.difference(comm_base),
            cache_hit_ratio=0.0,
            final_metrics=history.points[-1].metrics if history.points else {},
        )

    # --------------------------------------------------------------- evaluate

    def evaluate(
        self,
        test_graph: KnowledgeGraph,
        filter_set: set[tuple[int, int, int]] | None = None,
        max_queries: int | None = 200,
        num_candidates: int | None = 500,
    ) -> LinkPredictionResult:
        if self.entity_table is None or self.relation_table is None:
            raise RuntimeError("train() or setup() must run before evaluate()")
        return evaluate_link_prediction(
            self.model,
            self.entity_table,
            self.relation_table,
            test_graph,
            filter_set=filter_set,
            max_queries=max_queries,
            num_candidates=num_candidates,
            seed=self.config.seed + 7,
        )
