"""HET-KG trainer: the full simulated cluster assembly and training loop.

``HETKGTrainer`` wires together everything the paper's Fig. 3 shows: a
METIS-partitioned knowledge graph, one server shard + one worker per
machine, and (when enabled) per-worker hot-embedding caches managed by the
CPS or DPS strategy with bounded-staleness synchronization.

With ``cache_strategy="none"`` the identical machinery degrades to DGL-KE's
pull-everything-per-batch loop, which is how the baseline is implemented
(:class:`repro.core.baselines.DGLKETrainer`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache.strategies import (
    ConstantPartialStale,
    DynamicPartialStale,
    HotEmbeddingStrategy,
)
from repro.cache.sync import HotEmbeddingCache
from repro.core.config import TrainingConfig
from repro.core.convergence import HistoryPoint, TrainingHistory
from repro.core.telemetry import Telemetry
from repro.core.evaluation import LinkPredictionResult, evaluate_link_prediction
from repro.core.worker import Worker
from repro.kg.graph import KnowledgeGraph
from repro.models.base import KGEModel, get_model
from repro.models.losses import get_loss
from repro.obs.tracer import Tracer, get_tracer
from repro.optim import get_optimizer
from repro.partition.base import Partition
from repro.partition.metis import MetisPartitioner
from repro.partition.random_partition import RandomPartitioner
from repro.ps.compression import get_compressor
from repro.ps.kvstore import ShardedKVStore
from repro.ps.network import CommRecord, ComputeModel, NetworkModel
from repro.ps.server import ParameterServer
from repro.sampling.cache import CachedNegativeSampler
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import NegativeSampler
from repro.utils.rng import make_rng, split_worker_streams


def make_strategy(config: TrainingConfig) -> HotEmbeddingStrategy | None:
    """Build the cache strategy ``config`` selects (``None`` for cacheless).

    Module-level (rather than a trainer method) so mp worker processes can
    rebuild the identical strategy from a pickled config without shipping
    the trainer object across the process boundary.
    """
    cfg = config
    if cfg.cache_strategy == "cps":
        return ConstantPartialStale(cfg.cache_capacity, cfg.entity_ratio)
    if cfg.cache_strategy == "dps":
        return DynamicPartialStale(
            cfg.cache_capacity, cfg.dps_window, cfg.entity_ratio
        )
    if cfg.cache_strategy == "adaptive":
        # Imported lazily: the ADAPTIVE strategy lives in the streaming
        # subsystem and the static trainers must not depend on it.
        from repro.stream.drift import AdaptiveStale

        return AdaptiveStale(
            cfg.cache_capacity,
            cfg.dps_window,
            cfg.entity_ratio,
            threshold=cfg.adaptive_threshold,
            decay=cfg.adaptive_decay,
        )
    return None


def build_worker(
    machine: int,
    train_graph: KnowledgeGraph,
    triple_idx: np.ndarray,
    server,
    model: KGEModel,
    loss,
    network: NetworkModel,
    config: TrainingConfig,
    neg_seed: int | np.random.Generator,
    sampler_seed: int | np.random.Generator,
) -> Worker:
    """Assemble one machine's worker (sampler, cache, cost models).

    The single construction path shared by the simulator's ``setup()`` and
    the :mod:`repro.mp` child processes: both call this with the same
    ``(graph, triple_idx, seeds)``, so a worker's draw sequence is
    identical regardless of which backend hosts it.
    """
    cfg = config
    subgraph = train_graph.subgraph(triple_idx)
    neg_kwargs = dict(
        num_entities=train_graph.num_entities,
        num_negatives=cfg.num_negatives,
        strategy=cfg.negative_strategy,
        chunk_size=cfg.negative_chunk,
        filter_graph=train_graph if cfg.filter_false_negatives else None,
        seed=neg_seed,
    )
    if cfg.neg_cache != "off":
        # The cached sampler's side stream derives from the same integer
        # neg_seed, so mp children rebuild the identical cache behaviour
        # (this function is their construction path too).
        neg = CachedNegativeSampler(
            **neg_kwargs,
            mode=cfg.neg_cache,
            cache_size=cfg.neg_cache_size,
            pool_size=cfg.neg_cache_pool,
            refresh_period=cfg.neg_cache_refresh,
            refresh_keys=cfg.neg_cache_keys,
            temperature=cfg.neg_cache_temperature,
            anneal_steps=cfg.neg_cache_anneal,
        )
    else:
        neg = NegativeSampler(**neg_kwargs)
    sampler = EpochSampler(subgraph, cfg.batch_size, neg, seed=sampler_seed)
    compute = ComputeModel(
        throughput=cfg.compute_throughput * cfg.speed_of(machine)
    )
    strategy = make_strategy(cfg)
    cache = None
    if strategy is not None:
        # Either cache table may hold up to the whole budget: the filtering
        # algorithm enforces the entity/relation split (and reassigns slots
        # one side cannot fill), bounding the *combined* size by the
        # configured capacity.
        cache = HotEmbeddingCache(
            server,
            machine,
            entity_capacity=cfg.cache_capacity,
            relation_capacity=cfg.cache_capacity,
            entity_width=model.entity_dim,
            relation_width=model.relation_dim,
            sync_period=cfg.sync_period,
            local_lr=cfg.lr,
        )
    return Worker(
        machine,
        sampler,
        server,
        model,
        loss,
        network,
        compute,
        strategy=strategy,
        cache=cache,
        cost_dim=cfg.cost_dim,
    )


@dataclass
class TrainResult:
    """Everything a training run produced.

    ``sim_time`` is the slowest machine's simulated clock — the paper's
    "Time" column.  ``compute_time``/``communication_time`` are that same
    machine's breakdown (Fig. 7).  ``comm_totals`` aggregates the bytes all
    machines moved.
    """

    config: TrainingConfig
    system: str
    history: TrainingHistory
    sim_time: float
    compute_time: float
    communication_time: float
    comm_totals: CommRecord
    cache_hit_ratio: float
    final_metrics: dict[str, float] = field(default_factory=dict)
    #: Fault/recovery counters when a FaultPlan was active (see
    #: :class:`repro.faults.FaultStats.as_dict`; empty for fault-free runs).
    fault_stats: dict[str, float] = field(default_factory=dict)
    #: Simulated seconds spent moving/(de)quantizing tier data this run
    #: (0.0 for the resident backing).
    tier_time: float = 0.0
    #: ``ShardedKVStore.memory_report()`` taken at the end of the run —
    #: per-kind/per-tier byte breakdown (plain dicts, picklable for the
    #: parallel experiment runner).
    memory_report: dict = field(default_factory=dict)
    #: Which execution backend produced this result: ``"sim"`` (round-robin
    #: simulated workers) or ``"mp"`` (real worker processes over shared
    #: memory; see :mod:`repro.mp`).
    backend: str = "sim"
    #: Real elapsed seconds for the train() call (both backends measure it;
    #: only mp's number reflects genuine parallel execution).
    wall_time_s: float = 0.0
    #: Per-worker wall-clock spans for mp runs: ``{machine: {"wall_s": ...,
    #: "stall_s": ..., "stalls": ...}}`` where stalls are time spent blocked
    #: on the sync-schedule turn protocol or the async staleness bound.
    worker_wall: dict = field(default_factory=dict)
    #: Corruptions that exhausted their false-negative resample retries and
    #: trained on a true triple anyway (0 unless filter_false_negatives hit
    #: a dense neighbourhood; summed over workers for this train() call).
    false_negative_leaks: int = 0
    #: Candidate triples scored across all workers this run (training
    #: forward passes + hard-negative refresh scoring) — the efficiency
    #: axis of the negative-sampling experiment.
    scored_candidates: int = 0
    #: Hard-negative cache accounting when ``config.neg_cache != "off"``
    #: (see :mod:`repro.sampling.cache`): refresh counters summed over
    #: workers plus ``refresh_bytes``/``refresh_messages`` (the pulls the
    #: refreshes paid for) and ``neg_cache_time`` (the slowest machine's
    #: ``"neg_cache"`` clock category).  Empty when the cache is off.
    neg_cache_stats: dict = field(default_factory=dict)

    @property
    def communication_fraction(self) -> float:
        if self.sim_time == 0:
            return 0.0
        return self.communication_time / self.sim_time


class HETKGTrainer:
    """Distributed KGE training with hotness-aware caches.

    Parameters
    ----------
    config:
        The full hyperparameter set.  ``config.cache_strategy`` selects
        HET-KG-C (``"cps"``), HET-KG-D (``"dps"``), or the cache-less
        DGL-KE behaviour (``"none"``).
    """

    system_name = "HET-KG"

    def __init__(self, config: TrainingConfig) -> None:
        self.config = config
        self.model: KGEModel = get_model(config.model, config.dim)
        self.loss = get_loss(config.loss, config.margin)
        self.network = NetworkModel(
            bandwidth=config.bandwidth, latency=config.latency
        )
        self.compute = ComputeModel(throughput=config.compute_throughput)
        self._rng = make_rng(config.seed)
        self.server: ParameterServer | None = None
        self.workers: list[Worker] = []
        self.partition: Partition | None = None
        #: Per-worker stream seeds drawn at setup() (2 per machine:
        #: negative sampler, epoch sampler) — the mp backend re-derives
        #: identical worker streams from these ints in child processes.
        self._worker_seeds: list[int] = []

    # ------------------------------------------------------------------ setup

    def _make_partitioner(self):
        if self.config.partitioner == "metis":
            return MetisPartitioner(seed=self._rng)
        return RandomPartitioner(seed=self._rng)

    def _make_strategy(self) -> HotEmbeddingStrategy | None:
        return make_strategy(self.config)

    def setup(self, train_graph: KnowledgeGraph) -> None:
        """Partition the graph and build the cluster (idempotent)."""
        if self.server is not None:
            return
        cfg = self.config
        partitioner = self._make_partitioner()
        self.partition = partitioner.partition(train_graph, cfg.num_machines)

        entity_table = self.model.init_entities(train_graph.num_entities, self._rng)
        relation_table = self.model.init_relations(
            train_graph.num_relations, self._rng
        )
        tier_cfg = None
        if cfg.backing == "tiered":
            # Imported lazily: resident-backing trainers must not depend on
            # (or pay import cost for) the tier subsystem.
            from repro.tier import TierConfig, TierPolicy

            tier_cfg = TierConfig(
                budget=cfg.memory_budget,
                policy=TierPolicy(
                    block_rows=cfg.tier_block_rows,
                    cold_codec=cfg.tier_cold_codec,
                ),
                directory=cfg.tier_dir,
            )
        store = ShardedKVStore(
            entity_table,
            relation_table,
            self.partition.entity_part,
            cfg.num_machines,
            backing=cfg.backing,
            tier=tier_cfg,
        )
        self.server = ParameterServer(
            store,
            get_optimizer(cfg.optimizer, cfg.lr),
            byte_scale=cfg.byte_scale,
            compressor=get_compressor(cfg.compression),
        )

        # Integer seeds (not generators) so the mp backend can ship the very
        # same streams to worker processes; see split_worker_streams.
        self._worker_seeds = split_worker_streams(self._rng, cfg.num_machines * 2)
        for machine in range(cfg.num_machines):
            triple_idx = self.partition.triples_of(machine)
            if len(triple_idx) == 0:
                continue  # tiny graphs may leave a machine without triples
            self.workers.append(
                build_worker(
                    machine,
                    train_graph,
                    triple_idx,
                    self.server,
                    self.model,
                    self.loss,
                    self.network,
                    cfg,
                    self._worker_seeds[2 * machine],
                    self._worker_seeds[2 * machine + 1],
                )
            )

    def _wire_tracer(self, tracer: Tracer) -> None:
        """Bind observability scopes across layers (worker/cache/RPC/PS)."""
        assert self.server is not None
        for worker in self.workers:
            worker.trace = tracer.scope(f"worker{worker.machine}", worker.clock)
            if worker.cache is not None:
                worker.cache.trace = tracer.scope(
                    f"cache{worker.machine}", worker.clock
                )
            if worker._fault_channel is not None:
                worker._fault_channel.trace = tracer.scope(
                    f"rpc{worker.machine}", worker.clock
                )
            self.server.bind_trace(
                worker.machine, tracer.scope(f"ps@w{worker.machine}", worker.clock)
            )
        if self.server.store.tier is not None:
            tier = self.server.store.tier
            tier.bind_trace(tracer.scope("tier", tier.clock))

    def _install_faults(self, faults, checkpoint_every, checkpoint_path, telemetry):
        """Build the chaos layer for this train() call (or tear it down).

        Returns ``(injector, checkpoints)``.  Passing ``faults=None``
        restores direct PS access, so a later fault-free ``train()`` call
        on the same trainer is exactly an injector-free run.
        """
        assert self.server is not None
        checkpoints = None
        if checkpoint_every is not None or checkpoint_path is not None:
            from repro.faults.recovery import CheckpointManager

            checkpoints = CheckpointManager(
                self, every=checkpoint_every, path=checkpoint_path
            )
        if faults is None:
            for worker in self.workers:
                if worker._fault_channel is not None:
                    worker.uninstall_faults(self.server)
            return None, checkpoints
        from repro.faults.injector import FaultInjector
        from repro.faults.recovery import ShardRecovery
        from repro.faults.rpc import FaultyPSChannel

        injector = FaultInjector(faults)
        recovery = (
            ShardRecovery(self.server, checkpoints)
            if checkpoints is not None
            else None
        )
        for worker in self.workers:
            channel = FaultyPSChannel(
                self.server,
                worker.machine,
                injector,
                worker.clock,
                telemetry=telemetry,
            )
            worker.install_faults(channel, injector, recovery)
        return injector, checkpoints

    # ------------------------------------------------------------------ train

    def train(
        self,
        train_graph: KnowledgeGraph,
        eval_graph: KnowledgeGraph | None = None,
        filter_set: set[tuple[int, int, int]] | None = None,
        eval_every: int | None = None,
        eval_max_queries: int = 200,
        eval_candidates: int | None = 500,
        telemetry: Telemetry | None = None,
        tracer: Tracer | None = None,
        faults=None,
        checkpoint_every: int | None = None,
        checkpoint_path=None,
    ) -> TrainResult:
        """Run ``config.epochs`` epochs; optionally evaluate along the way.

        Parameters
        ----------
        eval_graph:
            Validation/test triples to rank at epoch boundaries.
        eval_every:
            Evaluate every this many epochs (``None`` = only after the
            final epoch, and only if ``eval_graph`` is given).
        telemetry:
            Optional per-iteration recorder attached to every worker.
        tracer:
            Optional :mod:`repro.obs` tracer; defaults to the
            process-wide tracer (installed by the CLI ``--trace`` flag),
            which is the zero-cost null tracer when tracing is off.
        faults:
            Optional :class:`repro.faults.FaultPlan` — deterministic
            chaos for this run.  A plan scheduling no faults reproduces
            the injector-free run bit-for-bit (the no-op invariant).
        checkpoint_every:
            Auto-checkpoint the global state every this many iterations
            (crash recovery rewinds a dead machine's shard to the last
            snapshot).
        checkpoint_path:
            Optional ``.npz`` path; every auto-checkpoint is also written
            to disk atomically.
        """
        self.setup(train_graph)
        if telemetry is not None:
            for worker in self.workers:
                worker.telemetry = telemetry
        injector, checkpoints = self._install_faults(
            faults, checkpoint_every, checkpoint_path, telemetry
        )
        active_tracer = tracer if tracer is not None else get_tracer()
        if active_tracer.enabled:
            self._wire_tracer(active_tracer)
        assert self.server is not None
        cfg = self.config
        history = TrainingHistory()
        iterations = max(w.sampler.batches_per_epoch for w in self.workers)

        # Accounting snapshot: every train() call reports only the traffic
        # and simulated time *it* generated, so calling train() repeatedly
        # (warm restarts, continued training) cannot inflate the books
        # with a previous run's totals.
        comm_base = self.network.totals.copy()
        clock_base = [w.clock.copy() for w in self.workers]
        leak_base = [
            w.sampler.negative_sampler.false_negative_leaks for w in self.workers
        ]
        scored_base = [w.scored_candidates for w in self.workers]
        neg_comm_base = [w.neg_cache_comm.copy() for w in self.workers]
        neg_counter_base = [
            w.neg_cache.counters() if w.neg_cache is not None else {}
            for w in self.workers
        ]
        tier = self.server.store.tier
        tier_base = tier.clock.elapsed if tier is not None else 0.0
        wall_start = time.perf_counter()

        for worker in self.workers:
            worker.start()

        global_iteration = 0
        for epoch in range(1, cfg.epochs + 1):
            losses = []
            # Round-robin interleaving simulates concurrent asynchronous
            # workers deterministically: each worker's cache misses the
            # other workers' pushes until its own refresh, exactly the
            # staleness the synchronization algorithm bounds.
            for _ in range(iterations):
                for worker in self.workers:
                    losses.append(worker.step())
                global_iteration += 1
                if checkpoints is not None:
                    checkpoints.maybe_snapshot(global_iteration)

            metrics: dict[str, float] = {}
            is_last = epoch == cfg.epochs
            due = eval_every is not None and epoch % eval_every == 0
            if eval_graph is not None and (due or is_last):
                result = self.evaluate(
                    eval_graph,
                    filter_set=filter_set,
                    max_queries=eval_max_queries,
                    num_candidates=eval_candidates,
                )
                metrics = {
                    "mrr": result.mrr,
                    "mr": result.mr,
                    **{f"hits@{k}": v for k, v in result.hits.items()},
                }
            history.append(
                HistoryPoint(
                    epoch=epoch,
                    sim_time=max(
                        w.clock.elapsed - base.elapsed
                        for w, base in zip(self.workers, clock_base)
                    ),
                    loss=float(np.mean(losses)) if losses else 0.0,
                    metrics=metrics,
                )
            )

        slowest_i = max(
            range(len(self.workers)),
            key=lambda i: self.workers[i].clock.elapsed - clock_base[i].elapsed,
        )
        slowest = self.workers[slowest_i]
        base = clock_base[slowest_i]
        hit_ratios = [w.cache_hit_ratio() for w in self.workers]
        fault_stats: dict[str, float] = {}
        if injector is not None:
            fault_stats = injector.stats.as_dict()
            fault_stats["recovery_time"] = sum(
                w.clock.category("recovery") - base.category("recovery")
                for w, base in zip(self.workers, clock_base)
            )
        if checkpoints is not None:
            fault_stats["checkpoints"] = checkpoints.saves
        memory_report = self.server.store.memory_report()
        if telemetry is not None:
            telemetry.record_memory(memory_report)
        neg_cache_stats: dict = {}
        if any(w.neg_cache is not None for w in self.workers):
            refresh_comm = CommRecord()
            counter_totals: dict[str, int] = {}
            cache_keys = 0
            for w, comm_b, counter_b in zip(
                self.workers, neg_comm_base, neg_counter_base
            ):
                if w.neg_cache is None:
                    continue
                refresh_comm.merge(w.neg_cache_comm.difference(comm_b))
                cache_keys += w.neg_cache.num_keys
                for key, value in w.neg_cache.counters().items():
                    counter_totals[key] = (
                        counter_totals.get(key, 0) + value - counter_b.get(key, 0)
                    )
            neg_cache_stats = {
                **counter_totals,
                "cache_keys": cache_keys,
                "refresh_bytes": refresh_comm.total_bytes,
                "refresh_remote_bytes": refresh_comm.remote_bytes,
                "refresh_messages": refresh_comm.total_messages,
                "neg_cache_time": slowest.clock.category("neg_cache")
                - base.category("neg_cache"),
            }
        return TrainResult(
            config=cfg,
            system=self.system_name,
            history=history,
            sim_time=slowest.clock.elapsed - base.elapsed,
            compute_time=slowest.clock.category("compute")
            - base.category("compute"),
            communication_time=slowest.clock.category("communication")
            - base.category("communication"),
            comm_totals=self.network.totals.difference(comm_base),
            cache_hit_ratio=float(np.mean(hit_ratios)) if hit_ratios else 0.0,
            final_metrics=history.points[-1].metrics if history.points else {},
            fault_stats=fault_stats,
            tier_time=(tier.clock.elapsed - tier_base) if tier is not None else 0.0,
            memory_report=memory_report,
            wall_time_s=time.perf_counter() - wall_start,
            false_negative_leaks=sum(
                w.sampler.negative_sampler.false_negative_leaks - b
                for w, b in zip(self.workers, leak_base)
            ),
            scored_candidates=sum(
                w.scored_candidates - b
                for w, b in zip(self.workers, scored_base)
            ),
            neg_cache_stats=neg_cache_stats,
        )

    # ----------------------------------------------------------------- train_mp

    def train_mp(
        self,
        train_graph: KnowledgeGraph,
        eval_graph: KnowledgeGraph | None = None,
        filter_set: set[tuple[int, int, int]] | None = None,
        eval_every: int | None = None,
        eval_max_queries: int = 200,
        eval_candidates: int | None = 500,
        telemetry: Telemetry | None = None,
        *,
        schedule: str = "async",
        staleness_bound: int | None = None,
        start_method: str | None = None,
        timeout_s: float | None = None,
        crash_at_step: tuple[int, int] | None = None,
    ) -> TrainResult:
        """Run ``config.epochs`` epochs with real worker processes.

        Workers are OS processes over SharedMemory-backed PS tables (one
        per machine, like the simulator).  ``schedule="sync"`` serializes
        steps in the simulator's round-robin order and is bit-identical to
        :meth:`train`; ``schedule="async"`` is hogwild with staleness
        bounded by ``staleness_bound`` (default: the cache's sync period).
        See :mod:`repro.mp` for the orchestration details.
        """
        from repro.mp.backend import run_mp_training

        return run_mp_training(
            self,
            train_graph,
            eval_graph=eval_graph,
            filter_set=filter_set,
            eval_every=eval_every,
            eval_max_queries=eval_max_queries,
            eval_candidates=eval_candidates,
            telemetry=telemetry,
            schedule=schedule,
            staleness_bound=staleness_bound,
            start_method=start_method,
            timeout_s=timeout_s,
            crash_at_step=crash_at_step,
        )

    # --------------------------------------------------------------- evaluate

    def evaluate(
        self,
        test_graph: KnowledgeGraph,
        filter_set: set[tuple[int, int, int]] | None = None,
        max_queries: int | None = 200,
        num_candidates: int | None = 500,
    ) -> LinkPredictionResult:
        """Filtered link prediction against the server's global tables."""
        if self.server is None:
            raise RuntimeError("train() or setup() must run before evaluate()")
        return evaluate_link_prediction(
            self.model,
            self.server.store.table("entity"),
            self.server.store.table("relation"),
            test_graph,
            filter_set=filter_set,
            max_queries=max_queries,
            num_candidates=num_candidates,
            seed=self.config.seed + 7,
        )


def make_trainer(system: str, config: TrainingConfig):
    """Build the trainer for a paper system name.

    ``system`` is one of ``"hetkg-c"``, ``"hetkg-d"``, ``"hetkg-a"``,
    ``"dglke"``, ``"pbg"`` (case-insensitive).
    """
    from repro.core.baselines import DGLKETrainer, PBGTrainer

    key = system.lower()
    if key in ("hetkg-c", "het-kg-c", "cps"):
        return HETKGTrainer(config.with_overrides(cache_strategy="cps"))
    if key in ("hetkg-d", "het-kg-d", "dps"):
        return HETKGTrainer(config.with_overrides(cache_strategy="dps"))
    if key in ("hetkg-a", "het-kg-a", "adaptive"):
        return HETKGTrainer(config.with_overrides(cache_strategy="adaptive"))
    if key in ("dglke", "dgl-ke"):
        return DGLKETrainer(config)
    if key == "pbg":
        return PBGTrainer(config)
    raise KeyError(
        f"unknown system {system!r}; expected hetkg-c, hetkg-d, hetkg-a, "
        f"dglke, or pbg"
    )
