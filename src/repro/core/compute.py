"""Model-agnostic forward/backward computation for one mini-batch.

Given a batch and the embedding rows for its unique ids, compute the loss
and the coalesced gradients per unique id.  Shared by every trainer (HET-KG
and both baselines), so the compared systems differ *only* in how they move
embeddings around — the learning math is identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import HEAD, REL, TAIL
from repro.models.base import KGEModel
from repro.models.losses import Loss
from repro.sampling.negative import MiniBatch
from repro.utils.kernels import scatter_add_rows


@dataclass
class BatchGradients:
    """Loss and per-unique-id gradients for one batch."""

    loss: float
    entity_ids: np.ndarray  # (U_e,) unique, sorted
    entity_grads: np.ndarray  # (U_e, entity_dim)
    relation_ids: np.ndarray  # (U_r,) unique, sorted
    relation_grads: np.ndarray  # (U_r, relation_dim)
    num_scores: int  # positives + negatives scored (for the compute model)


def compute_batch_gradients(
    model: KGEModel,
    loss: Loss,
    batch: MiniBatch,
    entity_ids: np.ndarray,
    entity_rows: np.ndarray,
    relation_ids: np.ndarray,
    relation_rows: np.ndarray,
) -> BatchGradients:
    """Forward + backward over ``batch``.

    Parameters
    ----------
    entity_ids / relation_ids:
        Sorted unique ids the batch touches (from
        :meth:`MiniBatch.unique_entities` / ``unique_relations``).
    entity_rows / relation_rows:
        Embedding rows aligned with those ids (wherever they were fetched
        from — cache or parameter server).

    Returns the loss and gradients *coalesced per unique id*, ready to push.
    """
    pos = batch.positives
    b = batch.size
    n_neg = batch.num_negatives

    h_pos = np.searchsorted(entity_ids, pos[:, HEAD])
    t_pos = np.searchsorted(entity_ids, pos[:, TAIL])
    r_pos = np.searchsorted(relation_ids, pos[:, REL])
    neg_pos = np.searchsorted(entity_ids, batch.neg_entities)  # (b, n_neg)

    h_rows = entity_rows[h_pos]
    t_rows = entity_rows[t_pos]
    r_rows = relation_rows[r_pos]

    # ---- forward ---------------------------------------------------------
    pos_scores = model.score(h_rows, r_rows, t_rows)

    # Negative triples: corrupt head or tail per row of the batch.
    corrupt_head = batch.corrupt_head  # (b,)
    rep = np.repeat(np.arange(b), n_neg)
    neg_flat = neg_pos.ravel()
    neg_h_idx = np.where(np.repeat(corrupt_head, n_neg), neg_flat, h_pos[rep])
    neg_t_idx = np.where(np.repeat(corrupt_head, n_neg), t_pos[rep], neg_flat)
    neg_h = entity_rows[neg_h_idx]
    neg_t = entity_rows[neg_t_idx]
    neg_r = relation_rows[r_pos[rep]]
    neg_scores = model.score(neg_h, neg_r, neg_t).reshape(b, n_neg)

    result = loss.compute(pos_scores, neg_scores)

    # ---- backward --------------------------------------------------------
    gh, gr, gt = model.grad(h_rows, r_rows, t_rows, result.grad_pos)
    gnh, gnr, gnt = model.grad(neg_h, neg_r, neg_t, result.grad_neg.ravel())

    # One bincount-based scatter per table replaces six np.add.at passes.
    # The concatenation preserves the reference pass order (gh, gt, gnh,
    # gnt — and gr, gnr for relations), so every gradient slot sees its
    # float contributions in the same left-to-right order and the result
    # is bit-identical (enforced by the golden-run equivalence suite).
    ent_grads = scatter_add_rows(
        np.concatenate([h_pos, t_pos, neg_h_idx, neg_t_idx]),
        np.concatenate([gh, gt, gnh, gnt]),
        len(entity_ids),
    )
    rel_grads = scatter_add_rows(
        np.concatenate([r_pos, r_pos[rep]]),
        np.concatenate([gr, gnr]),
        len(relation_ids),
    )

    return BatchGradients(
        loss=result.value,
        entity_ids=entity_ids,
        entity_grads=ent_grads,
        relation_ids=relation_ids,
        relation_grads=rel_grads,
        num_scores=b * (1 + n_neg),
    )
