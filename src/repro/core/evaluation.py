"""Filtered link-prediction evaluation: MRR, MR, Hits@k.

The paper's protocol (§VI-A): for each test triple, corrupt the head and
the tail against candidate entities, rank the true entity by model score,
and report Mean Reciprocal Rank, Mean Rank, and Hits@{1,3,10} under the
*filtered* setting — candidates that form a known true triple are excluded
from the ranking.

For large graphs the candidate set can be a uniform sample of entities
(plus the true one); this keeps evaluation tractable and, because every
compared system is scored the same way, preserves relative orderings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.models.base import KGEModel
from repro.utils.rng import make_rng


@dataclass
class LinkPredictionResult:
    """Aggregated ranking metrics over all queries.

    ``head_mrr``/``tail_mrr`` break the score down by corruption side —
    tail prediction is usually easier on relation-skewed graphs, and the
    gap is a useful diagnostic.
    """

    mrr: float
    mr: float
    hits: dict[int, float] = field(default_factory=dict)
    num_queries: int = 0
    head_mrr: float = 0.0
    tail_mrr: float = 0.0

    def as_row(self) -> list[float]:
        """[MRR, Hits@1, Hits@10] — the columns of the paper's tables."""
        return [self.mrr, self.hits.get(1, 0.0), self.hits.get(10, 0.0)]


def _rank_one_side(
    model: KGEModel,
    entity_table: np.ndarray,
    relation_table: np.ndarray,
    h: int,
    r: int,
    t: int,
    replace_head: bool,
    candidates: np.ndarray,
    filter_index: "FilterIndex | None",
) -> int:
    """Filtered rank of the true entity for one corruption side."""
    true_entity = h if replace_head else t
    cand_rows = entity_table[candidates]
    n = len(candidates)
    if replace_head:
        h_rows = cand_rows
        t_rows = np.broadcast_to(entity_table[t], (n, entity_table.shape[1]))
    else:
        h_rows = np.broadcast_to(entity_table[h], (n, entity_table.shape[1]))
        t_rows = cand_rows
    r_rows = np.broadcast_to(relation_table[r], (n, relation_table.shape[1]))
    scores = model.score(np.ascontiguousarray(h_rows), np.ascontiguousarray(r_rows), np.ascontiguousarray(t_rows))

    true_mask = candidates == true_entity
    true_score = model.score(
        entity_table[h][None, :], relation_table[r][None, :], entity_table[t][None, :]
    )[0]

    if filter_index is not None:
        known = filter_index.known_entities(h, r, t, replace_head)
        if len(known):
            drop = np.isin(candidates, known) & ~true_mask
            scores = np.where(drop, -np.inf, scores)
    # Rank = 1 + number of (non-true) candidates scoring strictly higher.
    better = np.count_nonzero(scores[~true_mask] > true_score)
    return 1 + int(better)


class FilterIndex:
    """Per-query lookup of known true triples for filtered ranking.

    Replaces the O(candidates) per-query membership loop with one dict
    lookup returning the (usually tiny) array of entities that complete a
    known triple for the query's fixed ``(relation, other-entity)`` pair.
    """

    def __init__(self, filter_set: set[tuple[int, int, int]]) -> None:
        heads: dict[tuple[int, int], list[int]] = {}
        tails: dict[tuple[int, int], list[int]] = {}
        for h, r, t in filter_set:
            heads.setdefault((r, t), []).append(h)
            tails.setdefault((h, r), []).append(t)
        self._heads = {k: np.asarray(v, dtype=np.int64) for k, v in heads.items()}
        self._tails = {k: np.asarray(v, dtype=np.int64) for k, v in tails.items()}
        self._empty = np.empty(0, dtype=np.int64)

    def known_entities(
        self, h: int, r: int, t: int, replace_head: bool
    ) -> np.ndarray:
        """Entities ``e`` with ``(e, r, t)`` (head side) or ``(h, r, e)``
        (tail side) in the filter set."""
        if replace_head:
            return self._heads.get((r, t), self._empty)
        return self._tails.get((h, r), self._empty)


def _full_ranks_reference(
    model: KGEModel,
    entity_table: np.ndarray,
    relation_table: np.ndarray,
    triples: np.ndarray,
    replace_head: bool,
    filter_index: "FilterIndex | None",
) -> list[int]:
    """Per-query full-candidate ranks — the equivalence oracle.

    This is the pre-vectorization implementation, kept verbatim (one
    ``_rank_one_side`` call per query) so the batched production kernels
    can be checked against it bit for bit.
    """
    candidates = np.arange(len(entity_table))
    return [
        _rank_one_side(
            model,
            entity_table,
            relation_table,
            int(h),
            int(r),
            int(t),
            replace_head,
            candidates,
            filter_index,
        )
        for h, r, t in triples
    ]


def _ranks_batched(
    model: KGEModel,
    entity_table: np.ndarray,
    relation_table: np.ndarray,
    triples: np.ndarray,
    replace_head: bool,
    filter_index: "FilterIndex | None",
    block_rows: int = 200_000,
) -> list[int]:
    """Full-candidate ranks for one corruption side, many queries at once.

    Scores ``(queries x all entities)`` through the model in flat blocks of
    at most ``block_rows`` rows, avoiding the per-query Python loop.  Ranks
    are bit-identical to :func:`_full_ranks_reference` (scores are the same
    per-row arithmetic, only the batching differs).
    """
    n_ent = len(entity_table)
    ranks: list[int] = []
    queries_per_block = max(1, block_rows // n_ent)
    for start in range(0, len(triples), queries_per_block):
        chunk = triples[start : start + queries_per_block]
        q = len(chunk)
        h = chunk[:, 0]
        r = chunk[:, 1]
        t = chunk[:, 2]
        cand = np.tile(np.arange(n_ent), q)
        rep = np.repeat(np.arange(q), n_ent)
        if replace_head:
            h_rows = entity_table[cand]
            t_rows = entity_table[t[rep]]
        else:
            h_rows = entity_table[h[rep]]
            t_rows = entity_table[cand]
        r_rows = relation_table[r[rep]]
        scores = model.score(h_rows, r_rows, t_rows).reshape(q, n_ent)

        true_entity = h if replace_head else t
        true_scores = scores[np.arange(q), true_entity]
        if filter_index is not None:
            for i in range(q):
                known = filter_index.known_entities(
                    int(h[i]), int(r[i]), int(t[i]), replace_head
                )
                if len(known):
                    scores[i, known] = -np.inf
            # The true entity is in every filter set; restore its score.
            scores[np.arange(q), true_entity] = true_scores
        better = (scores > true_scores[:, None]).sum(axis=1)
        # The true entity never counts (its score is never > itself).
        ranks.extend((1 + better).tolist())
    return ranks


def _ranks_sampled_batched(
    model: KGEModel,
    entity_table: np.ndarray,
    relation_table: np.ndarray,
    triples: np.ndarray,
    num_candidates: int,
    filter_index: "FilterIndex | None",
    rng: np.random.Generator,
    block_rows: int = 200_000,
) -> tuple[list[int], list[int]]:
    """Sampled-candidate ranks for both sides, scored in blocks.

    The reference path draws one candidate sample per (query, side) pair
    interleaved — head then tail per triple — and that draw order is part
    of the determinism contract.  This kernel therefore keeps *exactly*
    the reference's RNG consumption (same per-query ``rng.choice`` calls,
    same order) in a cheap first pass, then batches all model scoring:
    candidate rows are padded to a rectangle with each query's true entity
    (pads fall inside the true-entity mask, so they never affect ranks)
    and scored in flat blocks of at most ``block_rows`` rows.

    Ranks are bit-identical to the per-query reference: per-row score
    arithmetic is unchanged, filtering applies the same ``-inf`` masking,
    and the strictly-greater count ignores every true-entity copy.
    """
    num_entities = len(entity_table)
    per_side: dict[bool, list[np.ndarray]] = {True: [], False: []}
    for h, _, t in triples:
        for replace_head in (True, False):
            true_entity = int(h) if replace_head else int(t)
            sampled = rng.choice(num_entities, size=num_candidates, replace=False)
            per_side[replace_head].append(
                np.unique(np.append(sampled, true_entity))
            )
    # True-triple scores for every query, one batched call (the reference
    # scores the same (h, r, t) rows one at a time).
    true_scores = model.score(
        entity_table[triples[:, 0]],
        relation_table[triples[:, 1]],
        entity_table[triples[:, 2]],
    )
    head_ranks = _score_padded_candidates(
        model, entity_table, relation_table, triples, per_side[True],
        True, filter_index, true_scores, block_rows,
    )
    tail_ranks = _score_padded_candidates(
        model, entity_table, relation_table, triples, per_side[False],
        False, filter_index, true_scores, block_rows,
    )
    return head_ranks, tail_ranks


def _score_padded_candidates(
    model: KGEModel,
    entity_table: np.ndarray,
    relation_table: np.ndarray,
    triples: np.ndarray,
    cand_lists: list[np.ndarray],
    replace_head: bool,
    filter_index: "FilterIndex | None",
    true_scores: np.ndarray,
    block_rows: int,
) -> list[int]:
    """Rank one corruption side from per-query candidate id lists."""
    q_total = len(triples)
    width = max(len(c) for c in cand_lists)
    true_entities = triples[:, 0] if replace_head else triples[:, 2]
    cand = np.empty((q_total, width), dtype=np.int64)
    for i, c in enumerate(cand_lists):
        cand[i, : len(c)] = c
        cand[i, len(c):] = true_entities[i]  # pads; masked by the true rule
    ranks: list[int] = []
    queries_per_block = max(1, block_rows // width)
    for start in range(0, q_total, queries_per_block):
        stop = min(start + queries_per_block, q_total)
        chunk = cand[start:stop]
        q = stop - start
        rep = np.repeat(np.arange(start, stop), width)
        flat = chunk.ravel()
        if replace_head:
            h_rows = entity_table[flat]
            t_rows = entity_table[triples[rep, 2]]
        else:
            h_rows = entity_table[triples[rep, 0]]
            t_rows = entity_table[flat]
        r_rows = relation_table[triples[rep, 1]]
        scores = model.score(h_rows, r_rows, t_rows).reshape(q, width)
        block_true = true_scores[start:stop]
        not_true = chunk != true_entities[start:stop, None]
        if filter_index is not None:
            for i in range(q):
                gi = start + i
                known = filter_index.known_entities(
                    int(triples[gi, 0]),
                    int(triples[gi, 1]),
                    int(triples[gi, 2]),
                    replace_head,
                )
                if len(known):
                    drop = np.isin(chunk[i], known) & not_true[i]
                    scores[i, drop] = -np.inf
        better = ((scores > block_true[:, None]) & not_true).sum(axis=1)
        ranks.extend((1 + better).tolist())
    return ranks


def evaluate_link_prediction(
    model: KGEModel,
    entity_table: np.ndarray,
    relation_table: np.ndarray,
    test: KnowledgeGraph,
    filter_set: set[tuple[int, int, int]] | None = None,
    hits_at: tuple[int, ...] = (1, 3, 10),
    max_queries: int | None = None,
    num_candidates: int | None = None,
    seed: int | np.random.Generator | None = None,
    batched: bool = True,
) -> LinkPredictionResult:
    """Evaluate embeddings on ``test`` with head and tail corruption.

    Parameters
    ----------
    entity_table / relation_table:
        Global embedding matrices (from the parameter server).
    filter_set:
        All known true triples (train+valid+test) for filtered ranking;
        ``None`` gives raw ranking.
    max_queries:
        Evaluate at most this many test triples (uniform subsample).
    num_candidates:
        Sample this many negative candidate entities per query instead of
        ranking against all entities (plus the true one).
    batched:
        Use the vectorized block-scoring kernels (the default).  Results
        are bit-identical to the per-query reference implementation
        (``batched=False``), which is kept as the equivalence oracle —
        see :func:`_full_ranks_reference` / :func:`_ranks_sampled_batched`.
    """
    rng = make_rng(seed)
    triples = test.triples
    if max_queries is not None and len(triples) > max_queries:
        idx = rng.choice(len(triples), size=max_queries, replace=False)
        triples = triples[idx]
    filter_index = FilterIndex(filter_set) if filter_set is not None else None

    num_entities = len(entity_table)
    full_ranking = num_candidates is None or num_candidates >= num_entities
    if batched and len(triples):
        if full_ranking:
            head_ranks = _ranks_batched(
                model, entity_table, relation_table, triples, True, filter_index
            )
            tail_ranks = _ranks_batched(
                model, entity_table, relation_table, triples, False, filter_index
            )
        else:
            head_ranks, tail_ranks = _ranks_sampled_batched(
                model,
                entity_table,
                relation_table,
                triples,
                num_candidates,
                filter_index,
                rng,
            )
        return _aggregate(head_ranks, tail_ranks, hits_at)

    head_ranks: list[int] = []
    tail_ranks: list[int] = []
    for h, r, t in triples:
        h, r, t = int(h), int(r), int(t)
        for replace_head in (True, False):
            true_entity = h if replace_head else t
            if num_candidates is not None and num_candidates < num_entities:
                sampled = rng.choice(num_entities, size=num_candidates, replace=False)
                candidates = np.unique(np.append(sampled, true_entity))
            else:
                candidates = np.arange(num_entities)
            rank = _rank_one_side(
                model,
                entity_table,
                relation_table,
                h,
                r,
                t,
                replace_head,
                candidates,
                filter_index,
            )
            (head_ranks if replace_head else tail_ranks).append(rank)

    return _aggregate(head_ranks, tail_ranks, hits_at)


def _aggregate(
    head_ranks: list[int], tail_ranks: list[int], hits_at: tuple[int, ...]
) -> LinkPredictionResult:
    """Fold per-side rank lists into the metric dataclass."""
    ranks = head_ranks + tail_ranks
    if not ranks:
        return LinkPredictionResult(mrr=0.0, mr=0.0, hits={k: 0.0 for k in hits_at})
    ranks_arr = np.asarray(ranks, dtype=np.float64)
    head_arr = np.asarray(head_ranks, dtype=np.float64)
    tail_arr = np.asarray(tail_ranks, dtype=np.float64)
    return LinkPredictionResult(
        mrr=float((1.0 / ranks_arr).mean()),
        mr=float(ranks_arr.mean()),
        hits={k: float((ranks_arr <= k).mean()) for k in hits_at},
        num_queries=len(ranks),
        head_mrr=float((1.0 / head_arr).mean()) if len(head_arr) else 0.0,
        tail_mrr=float((1.0 / tail_arr).mean()) if len(tail_arr) else 0.0,
    )
