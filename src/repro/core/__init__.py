"""The HET-KG training system and its baselines.

* :mod:`repro.core.config` — every hyperparameter in one dataclass.
* :mod:`repro.core.compute` — model-agnostic batch gradient computation.
* :mod:`repro.core.worker` — one machine's training loop (with or without
  the hot-embedding cache).
* :mod:`repro.core.trainer` — HET-KG (CPS/DPS) and the cluster assembly.
* :mod:`repro.core.baselines` — DGL-KE and PyTorch-BigGraph reimplementations.
* :mod:`repro.core.evaluation` — filtered link-prediction metrics.
* :mod:`repro.core.convergence` — loss/metric-vs-time tracking.
"""

from repro.core.config import TrainingConfig
from repro.core.trainer import HETKGTrainer, TrainResult, make_trainer
from repro.core.baselines import DGLKETrainer, PBGTrainer
from repro.core.evaluation import evaluate_link_prediction, LinkPredictionResult
from repro.core.classification import classify_triples, ClassificationResult
from repro.core.checkpoint import save_checkpoint, load_checkpoint
from repro.core.convergence import TrainingHistory, HistoryPoint
from repro.core.telemetry import Telemetry, IterationRecord

__all__ = [
    "TrainingConfig",
    "HETKGTrainer",
    "TrainResult",
    "make_trainer",
    "DGLKETrainer",
    "PBGTrainer",
    "evaluate_link_prediction",
    "LinkPredictionResult",
    "classify_triples",
    "ClassificationResult",
    "save_checkpoint",
    "load_checkpoint",
    "TrainingHistory",
    "HistoryPoint",
    "Telemetry",
    "IterationRecord",
]
