"""Training histories: loss/metrics against epochs and simulated time.

Feeds the paper's convergence figures (Fig. 5, Fig. 9): each epoch appends
one :class:`HistoryPoint`, and curves are read off as (time, MRR) or
(epoch, MRR) series.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HistoryPoint:
    """State at the end of one epoch."""

    epoch: int
    sim_time: float  # cumulative simulated seconds (slowest machine)
    loss: float  # mean batch loss over the epoch
    metrics: dict[str, float] = field(default_factory=dict)  # e.g. {"mrr": ...}


@dataclass
class TrainingHistory:
    """Ordered sequence of epoch snapshots."""

    points: list[HistoryPoint] = field(default_factory=list)

    def append(self, point: HistoryPoint) -> None:
        if self.points and point.epoch <= self.points[-1].epoch:
            raise ValueError(
                f"epochs must increase: got {point.epoch} after "
                f"{self.points[-1].epoch}"
            )
        self.points.append(point)

    def __len__(self) -> int:
        return len(self.points)

    def series(self, metric: str) -> tuple[list[float], list[float]]:
        """(sim_times, metric values) for the epochs that recorded it."""
        times, values = [], []
        for p in self.points:
            if metric in p.metrics:
                times.append(p.sim_time)
                values.append(p.metrics[metric])
        return times, values

    def epoch_series(self, metric: str) -> tuple[list[int], list[float]]:
        """(epochs, metric values) for the epochs that recorded it."""
        epochs, values = [], []
        for p in self.points:
            if metric in p.metrics:
                epochs.append(p.epoch)
                values.append(p.metrics[metric])
        return epochs, values

    def losses(self) -> list[float]:
        return [p.loss for p in self.points]

    def final_metric(self, metric: str, default: float = 0.0) -> float:
        """Last recorded value of ``metric``."""
        for p in reversed(self.points):
            if metric in p.metrics:
                return p.metrics[metric]
        return default

    def time_to_reach(self, metric: str, target: float) -> float | None:
        """Simulated time of the first epoch where ``metric >= target``
        (None if never reached) — the paper's time-to-accuracy readout."""
        for p in self.points:
            if p.metrics.get(metric, float("-inf")) >= target:
                return p.sim_time
        return None
