"""Triple classification: a second downstream evaluation task.

Given a trained model, decide whether an unseen triple is true or false by
thresholding its score.  Thresholds are chosen *per relation* on a
validation set (the protocol of Socher et al. / Wang et al.), then accuracy
is measured on a test set against corrupted negatives.  The paper evaluates
link prediction only; this module extends the evaluation surface the way
the KGE literature usually does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import HEAD, REL, TAIL, KnowledgeGraph
from repro.models.base import KGEModel
from repro.utils.rng import make_rng


@dataclass
class ClassificationResult:
    """Accuracy of score-threshold triple classification."""

    accuracy: float
    per_relation_threshold: dict[int, float]
    num_examples: int


def _scores(
    model: KGEModel,
    entity_table: np.ndarray,
    relation_table: np.ndarray,
    triples: np.ndarray,
) -> np.ndarray:
    if len(triples) == 0:
        return np.zeros(0)
    return model.score(
        entity_table[triples[:, HEAD]],
        relation_table[triples[:, REL]],
        entity_table[triples[:, TAIL]],
    )


def _corrupt(
    triples: np.ndarray, num_entities: int, rng: np.random.Generator
) -> np.ndarray:
    """One uniformly-corrupted negative per positive (head or tail)."""
    neg = triples.copy()
    corrupt_head = rng.random(len(triples)) < 0.5
    replacements = rng.integers(0, num_entities, size=len(triples))
    neg[corrupt_head, HEAD] = replacements[corrupt_head]
    neg[~corrupt_head, TAIL] = replacements[~corrupt_head]
    return neg


def _best_threshold(pos: np.ndarray, neg: np.ndarray) -> float:
    """Threshold maximising accuracy over the two score samples."""
    candidates = np.unique(np.concatenate([pos, neg]))
    best_t, best_acc = 0.0, -1.0
    for t in candidates:
        acc = ((pos >= t).sum() + (neg < t).sum()) / (len(pos) + len(neg))
        if acc > best_acc:
            best_t, best_acc = float(t), float(acc)
    return best_t


def classify_triples(
    model: KGEModel,
    entity_table: np.ndarray,
    relation_table: np.ndarray,
    valid: KnowledgeGraph,
    test: KnowledgeGraph,
    seed: int | np.random.Generator | None = None,
) -> ClassificationResult:
    """Per-relation threshold classification.

    Thresholds are fitted on ``valid`` (positives vs corruptions) and
    applied to ``test``.  Relations unseen in ``valid`` fall back to the
    global threshold.
    """
    rng = make_rng(seed)
    valid_neg = _corrupt(valid.triples, valid.num_entities, rng)
    valid_pos_scores = _scores(model, entity_table, relation_table, valid.triples)
    valid_neg_scores = _scores(model, entity_table, relation_table, valid_neg)

    global_threshold = (
        _best_threshold(valid_pos_scores, valid_neg_scores)
        if len(valid.triples)
        else 0.0
    )
    thresholds: dict[int, float] = {}
    for r in np.unique(valid.triples[:, REL]) if len(valid.triples) else []:
        mask = valid.triples[:, REL] == r
        if mask.sum() >= 4:  # too few examples -> keep the global threshold
            thresholds[int(r)] = _best_threshold(
                valid_pos_scores[mask], valid_neg_scores[mask]
            )

    test_neg = _corrupt(test.triples, test.num_entities, rng)
    test_pos_scores = _scores(model, entity_table, relation_table, test.triples)
    test_neg_scores = _scores(model, entity_table, relation_table, test_neg)

    correct = 0
    for i, (_, r, _) in enumerate(test.triples):
        t = thresholds.get(int(r), global_threshold)
        correct += int(test_pos_scores[i] >= t)
        correct += int(test_neg_scores[i] < t)
    total = 2 * len(test.triples)
    return ClassificationResult(
        accuracy=correct / total if total else 0.0,
        per_relation_threshold=thresholds,
        num_examples=total,
    )
