"""One machine's training loop (Algorithm 3, worker side).

A worker owns a partition of the training triples and iterates:

1. obtain the next mini-batch (live-sampled, or prefetched by the CPS/DPS
   strategy — Algorithm 1);
2. (cached workers) rebuild / synchronize the hot-embedding table when the
   strategy or the staleness bound ``P`` says so;
3. fetch the batch's embedding rows — hot ids from the local cache,
   everything else from the parameter server;
4. forward + backward (:mod:`repro.core.compute`);
5. apply its own gradients to cached rows and push *all* gradients to the
   parameter server (the server applies AdaGrad — Algorithm 4).

Every fetch/push advances the worker's simulated clock through the network
model; every score/backprop advances it through the compute model.  With
``cache=None`` and a live sampler this is exactly the DGL-KE worker loop.
"""

from __future__ import annotations

from repro.cache.strategies import HotEmbeddingStrategy
from repro.cache.sync import HotEmbeddingCache
from repro.core.compute import compute_batch_gradients
from repro.core.telemetry import IterationRecord, Telemetry
from repro.obs.tracer import NULL_SCOPE
from repro.models.base import KGEModel
from repro.models.losses import Loss
from repro.ps.network import CommRecord, ComputeModel, NetworkModel
from repro.ps.server import ParameterServer
from repro.sampling.cache import CachedNegativeSampler
from repro.sampling.minibatch import EpochSampler
from repro.utils.simclock import SimClock


class Worker:
    """A simulated training process on one machine.

    Parameters
    ----------
    machine:
        This worker's machine id (decides which embeddings are local).
    sampler:
        Mini-batch source over the worker's subgraph.
    server:
        The shared parameter server.
    model / loss:
        The scoring geometry and objective (shared by all workers).
    network / compute:
        Cost models converting traffic and flops into simulated seconds.
    strategy:
        CPS/DPS hot-set manager; ``None`` disables caching (DGL-KE mode).
    cache:
        The hot-embedding tables; required iff ``strategy`` is given.
    cost_dim:
        Dimension the compute model charges per score (defaults to the
        model's actual ``dim``; trainers pass the wire dimension).
    telemetry:
        Optional per-iteration recorder (see :mod:`repro.core.telemetry`).
    """

    def __init__(
        self,
        machine: int,
        sampler: EpochSampler,
        server: ParameterServer,
        model: KGEModel,
        loss: Loss,
        network: NetworkModel,
        compute: ComputeModel,
        strategy: HotEmbeddingStrategy | None = None,
        cache: HotEmbeddingCache | None = None,
        cost_dim: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if (strategy is None) != (cache is None):
            raise ValueError("strategy and cache must be provided together")
        self.machine = machine
        self.sampler = sampler
        self.server = server
        self.model = model
        self.loss = loss
        self.network = network
        self.compute = compute
        self.strategy = strategy
        self.cache = cache
        self.cost_dim = cost_dim if cost_dim is not None else model.dim
        self.telemetry = telemetry
        # Hard-negative cache plumbing (see repro.sampling.cache): when the
        # epoch sampler wraps a CachedNegativeSampler, this worker drives
        # its hotness-ordered refreshes and charges the scoring traffic to
        # the "neg_cache" clock category.  All None/zero when neg_cache=off,
        # so the disabled path is bit-identical to the pre-cache worker.
        neg = getattr(sampler, "negative_sampler", None)
        self.neg_cache = neg if isinstance(neg, CachedNegativeSampler) else None
        self.neg_cache_comm = CommRecord()
        #: Candidate triples scored on this worker (training forward passes
        #: plus neg-cache refresh scoring) — the experiment's "scored
        #: candidates" efficiency axis.
        self.scored_candidates = 0
        self._leaks_seen = 0
        self.clock = SimClock()
        #: Observability scope for this worker's phase spans (bound by the
        #: trainer when tracing is on; the null scope costs nothing).
        self.trace = NULL_SCOPE
        self._step_comm: CommRecord | None = None
        self.iterations = 0
        self._started = False
        # Fault-injection hooks (installed by the trainer when a FaultPlan
        # is active; all None in the fault-free fast path).
        self._fault_channel = None
        self._fault_injector = None
        self._shard_recovery = None
        self.recoveries = 0

    # ----------------------------------------------------------------- faults

    def install_faults(self, channel, injector, shard_recovery=None) -> None:
        """Splice a retrying, fault-injecting RPC channel between this
        worker (and its cache) and the parameter server.

        ``channel`` must expose the :class:`~repro.ps.server.ParameterServer`
        ``pull``/``push`` signature (see
        :class:`~repro.faults.rpc.FaultyPSChannel`); ``shard_recovery`` is
        the crash-restart hook restoring this machine's PS shard from the
        last checkpoint.
        """
        self._fault_channel = channel
        self._fault_injector = injector
        self._shard_recovery = shard_recovery
        self.server = channel
        if self.cache is not None:
            self.cache.server = channel

    def uninstall_faults(self, server: ParameterServer) -> None:
        """Remove the fault channel, restoring direct PS access."""
        self._fault_channel = None
        self._fault_injector = None
        self._shard_recovery = None
        self.server = server
        if self.cache is not None:
            self.cache.server = server

    # ------------------------------------------------------------------ setup

    def start(self) -> None:
        """Build the initial hot-embedding table (no-op without a cache)."""
        if self._started:
            return
        self._started = True
        if self.strategy is None or self.cache is None:
            return
        with self.trace.span("setup", "compute"):
            hot = self.strategy.setup(self.sampler)
            self._charge_overhead()
        with self.trace.span("install", "communication") as span:
            comm = self.cache.install(hot)
            self._charge_comm(comm)
            span.set(bytes=comm.total_bytes)

    # ------------------------------------------------------------------- step

    def step(self) -> float:
        """Run one training iteration; returns the batch loss."""
        if not self._started:
            self.start()
        step_index = self.iterations + 1
        if self._fault_channel is not None:
            # Line the RPC channel's fault windows up with this step.
            self._fault_channel.iteration = step_index
        if self._fault_injector is not None and self._fault_injector.crash_due(
            self.machine, step_index
        ):
            self._crash_restart(step_index)
        self._step_comm = CommRecord()
        if self.cache is not None:
            stats_before = self.cache.combined_stats()
            hits_before, misses_before = stats_before.hits, stats_before.misses
        else:
            hits_before = misses_before = 0

        # 1. next batch (and possibly a new hot set to install).
        if self.strategy is not None and self.cache is not None:
            with self.trace.span("sample", "compute"):
                batch, new_hot = self.strategy.next_batch()
                self._charge_overhead()
            if new_hot is not None:
                with self.trace.span("rebuild", "communication") as span:
                    rebuild_comm = self.cache.install(new_hot)
                    self._charge_comm(rebuild_comm)
                    span.set(bytes=rebuild_comm.total_bytes)
                self.trace.count("worker.rebuilds")
            # 2. bounded-staleness synchronization (every P iterations).
            sync_comm = self.cache.tick()
            if sync_comm is not None:
                with self.trace.span("sync", "communication") as span:
                    self._charge_comm(sync_comm)
                    span.set(bytes=sync_comm.total_bytes)
                self.trace.count("worker.syncs")
        else:
            with self.trace.span("sample", "compute"):
                batch = self.sampler.next_batch()

        # 2b. lazy hard-negative cache refresh (NSCaching's index step):
        # every refresh_period steps, score the hottest touched keys'
        # candidate pools against the live model.  Traffic and flops are
        # charged under the dedicated "neg_cache" category — the cache has
        # to pay for its refresh scoring on the same books as everyone.
        if self.neg_cache is not None and self.neg_cache.refresh_due(step_index):
            self._refresh_neg_cache()

        # 3. fetch embedding rows.
        with self.trace.span("fetch", "communication") as span:
            ent_ids = batch.unique_entities()
            rel_ids = batch.unique_relations()
            if self.cache is not None:
                ent_rows, comm_e = self.cache.fetch("entity", ent_ids)
                rel_rows, comm_r = self.cache.fetch("relation", rel_ids)
            else:
                ent_rows, comm_e = self.server.pull("entity", ent_ids, self.machine)
                rel_rows, comm_r = self.server.pull("relation", rel_ids, self.machine)
            self._charge_comm(comm_e)
            self._charge_comm(comm_r)
            span.set(bytes=comm_e.total_bytes + comm_r.total_bytes)

        # 4. forward + backward.
        with self.trace.span("compute", "compute") as span:
            grads = compute_batch_gradients(
                self.model, self.loss, batch, ent_ids, ent_rows, rel_ids, rel_rows
            )
            batch_time = self.compute.batch_time(grads.num_scores, self.cost_dim)
            if self._fault_injector is not None:
                # Transient straggler windows slow this machine's compute.
                batch_time *= self._fault_injector.straggler_factor(
                    self.machine, step_index
                )
            self.clock.advance(batch_time, "compute")
            self.scored_candidates += grads.num_scores
            span.set(scores=grads.num_scores)

        # 5. local cache update + push everything to the PS.
        with self.trace.span("push", "communication") as span:
            if self.cache is not None:
                self.cache.apply_local_gradients(
                    "entity", grads.entity_ids, grads.entity_grads
                )
                self.cache.apply_local_gradients(
                    "relation", grads.relation_ids, grads.relation_grads
                )
            push_e = self.server.push(
                "entity", grads.entity_ids, grads.entity_grads, self.machine
            )
            push_r = self.server.push(
                "relation", grads.relation_ids, grads.relation_grads, self.machine
            )
            self._charge_comm(push_e)
            self._charge_comm(push_r)
            span.set(bytes=push_e.total_bytes + push_r.total_bytes)

        self.iterations += 1
        self.trace.count("worker.steps")
        if self._step_comm is not None and self._step_comm.remote_bytes:
            self.trace.count("worker.remote_bytes", self._step_comm.remote_bytes)
        leaks = self.sampler.negative_sampler.false_negative_leaks
        if leaks > self._leaks_seen:
            if self.telemetry is not None:
                self.telemetry.bump("false_negative_leaks", leaks - self._leaks_seen)
            self._leaks_seen = leaks
        if self.telemetry is not None:
            if self.cache is not None:
                stats = self.cache.combined_stats()
                hits = stats.hits - hits_before
                misses = stats.misses - misses_before
            else:
                hits, misses = 0, 0
            self.telemetry.add(
                IterationRecord(
                    worker=self.machine,
                    iteration=self.iterations,
                    loss=grads.loss,
                    local_bytes=self._step_comm.local_bytes,
                    remote_bytes=self._step_comm.remote_bytes,
                    sim_time=self.clock.elapsed,
                    cache_hits=hits,
                    cache_misses=misses,
                )
            )
        self._step_comm = None
        return grads.loss

    # -------------------------------------------------------------- neg cache

    def _refresh_neg_cache(self) -> None:
        """Run one hard-negative cache refresh (see repro.sampling.cache).

        Pulls the candidate/anchor rows through whatever server channel is
        installed (direct PS, fault channel, or the mp wall-clock channel),
        charges the pull traffic and the forward-only scoring flops to the
        ``"neg_cache"`` clock category, and lets the sampler rewrite the
        due caches from the scores.
        """
        assert self.neg_cache is not None
        plan = self.neg_cache.plan_refresh()
        if plan is None:
            return
        with self.trace.span("neg_refresh", "neg_cache") as span:
            ent_rows, comm_e = self.server.pull(
                "entity", plan.entity_ids, self.machine
            )
            rel_rows, comm_r = self.server.pull(
                "relation", plan.relation_ids, self.machine
            )
            self._charge_neg_comm(comm_e)
            self._charge_neg_comm(comm_r)
            scored = self.neg_cache.complete_refresh(
                plan, self.model, ent_rows, rel_rows
            )
            self.clock.advance(
                self.compute.batch_time(scored, self.cost_dim, backward=False),
                "neg_cache",
            )
            self.scored_candidates += scored
            span.set(
                bytes=comm_e.total_bytes + comm_r.total_bytes,
                keys=len(plan.keys),
                scores=scored,
            )
        self.trace.count("worker.neg_refreshes")
        if self.telemetry is not None:
            self.telemetry.bump("neg_cache_refreshes")
            self.telemetry.bump("neg_cache_candidates_scored", scored)

    def _charge_neg_comm(self, comm: CommRecord) -> None:
        """Account refresh traffic once, under the ``neg_cache`` category."""
        self.neg_cache_comm.merge(comm)
        if self._step_comm is not None:
            self._step_comm.merge(comm)
        self.clock.advance(self.network.charge(comm), "neg_cache")

    # --------------------------------------------------------------- recovery

    def _crash_restart(self, step_index: int) -> None:
        """Simulate this machine crashing and coming back.

        What is lost and what it costs (all charged to this clock):

        1. the PS shard this machine owned rewinds to the last checkpoint
           (``restart_delay + restored_bytes / recovery_bandwidth`` seconds,
           category ``"recovery"``);
        2. the hot-embedding cache is gone — the CPS/DPS setup re-runs
           (prefetch/filter overhead as ``"compute"``) and the hot table is
           re-installed, re-pulling every hot row (``"communication"``).
        """
        assert self._fault_injector is not None
        plan = self._fault_injector.plan
        with self.trace.span("crash_restart", "recovery") as span:
            restored_bytes = 0
            if self._shard_recovery is not None:
                restored_bytes = self._shard_recovery.restore(self.machine)
            downtime = plan.restart_delay + restored_bytes / plan.recovery_bandwidth
            self.clock.advance(downtime, "recovery")
            span.set(restored_bytes=restored_bytes, downtime=downtime)
            if self.cache is not None and self.strategy is not None:
                self.cache.invalidate()
                with self.trace.span("recover.setup", "compute"):
                    hot = self.strategy.setup(self.sampler)
                    self._charge_overhead()
                with self.trace.span("recover.install", "communication") as s:
                    comm = self.cache.install(hot)
                    self._charge_comm(comm)
                    s.set(bytes=comm.total_bytes)
            self._fault_injector.stats.recoveries += 1
            self._fault_injector.stats.recovery_seconds += downtime
        self.recoveries += 1
        self.trace.count("worker.recoveries")
        if self.telemetry is not None:
            from repro.core.telemetry import FaultEvent

            self.telemetry.add_event(
                FaultEvent(
                    worker=self.machine,
                    iteration=step_index,
                    kind="crash_restart",
                    sim_time=self.clock.elapsed,
                    detail=f"restored {restored_bytes} B",
                )
            )

    # ------------------------------------------------------------------ stats

    def cache_hit_ratio(self) -> float:
        """Combined entity+relation hit ratio (0.0 without a cache)."""
        if self.cache is None:
            return 0.0
        return self.cache.combined_stats().hit_ratio

    # ---------------------------------------------------------------- private

    def _charge_comm(self, comm: CommRecord) -> None:
        """Account ``comm`` into the network totals (exactly once) and
        advance this worker's clock by its cost."""
        if self._step_comm is not None:
            self._step_comm.merge(comm)
        self.clock.advance(self.network.charge(comm), "communication")

    def _charge_overhead(self) -> None:
        if self.strategy is None:
            return
        items = self.strategy.consume_overhead_items()
        if items:
            self.clock.advance(self.compute.overhead_time(items), "compute")
