"""Per-iteration telemetry: what each worker did on every step.

Epoch-level histories (:mod:`repro.core.convergence`) are enough for the
paper's plots, but debugging cache behaviour needs finer grain: how many
bytes did iteration 17 move, how did the loss move, when did syncs fire.
Attach a :class:`Telemetry` to a trainer to capture one record per worker
step, then export CSV or aggregate.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field


@dataclass(frozen=True)
class IterationRecord:
    """One worker training step."""

    worker: int
    iteration: int
    loss: float
    local_bytes: int
    remote_bytes: int
    sim_time: float  # the worker's clock after the step
    cache_hits: int
    cache_misses: int


@dataclass(frozen=True)
class FaultEvent:
    """One fault-injection or recovery incident (see :mod:`repro.faults`).

    ``kind`` is one of ``"retry"``, ``"forced_pull"``, ``"lost_push"``,
    ``"stale_overrun"``, ``"crash_restart"``; ``sim_time`` is the affected
    worker's clock when the event was recorded.
    """

    worker: int
    iteration: int
    kind: str
    sim_time: float
    detail: str = ""


@dataclass
class Telemetry:
    """Collects :class:`IterationRecord` objects across all workers.

    When fault injection is active (:mod:`repro.faults`), retry/recovery
    incidents are additionally collected as :class:`FaultEvent` rows in
    :attr:`events` — kept separate from the per-step records so the CSV
    schema and summaries of fault-free runs are unchanged.

    Trainers also snapshot the store's per-tier byte breakdown
    (``ShardedKVStore.memory_report()``) into :attr:`memory_reports` at
    the end of each ``train()`` call — again a separate channel, so the
    per-step CSV schema is untouched.
    """

    records: list[IterationRecord] = field(default_factory=list)
    events: list[FaultEvent] = field(default_factory=list)
    memory_reports: list[dict] = field(default_factory=list)
    #: Named monotone counters (e.g. ``false_negative_leaks``,
    #: ``neg_cache_refreshes``) — yet another separate channel, so the
    #: per-step CSV schema stays frozen while subsystems report rare
    #: incidents without one row per occurrence.
    counters: dict[str, int] = field(default_factory=dict)

    def add(self, record: IterationRecord) -> None:
        self.records.append(record)

    def add_event(self, event: FaultEvent) -> None:
        self.events.append(event)

    def bump(self, name: str, by: int = 1) -> None:
        """Increment the named counter (created at 0 on first use)."""
        self.counters[name] = self.counters.get(name, 0) + int(by)

    def counter(self, name: str) -> int:
        """Current value of the named counter (0 if never bumped)."""
        return self.counters.get(name, 0)

    def record_memory(self, report: dict) -> None:
        """Snapshot a store memory report (one per completed train() call)."""
        self.memory_reports.append(report)

    def latest_memory(self) -> dict:
        """The most recent memory report (empty dict if none recorded)."""
        return self.memory_reports[-1] if self.memory_reports else {}

    def __len__(self) -> int:
        return len(self.records)

    # ----------------------------------------------------------- fault views

    def events_of(self, kind: str) -> list[FaultEvent]:
        """All fault events of one kind (e.g. ``"retry"``)."""
        return [e for e in self.events if e.kind == kind]

    def fault_summary(self) -> dict[str, int]:
        """Event counts by kind (empty dict for a fault-free run)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------ views

    def for_worker(self, worker: int) -> list[IterationRecord]:
        return [r for r in self.records if r.worker == worker]

    def losses(self) -> list[float]:
        return [r.loss for r in self.records]

    def total_remote_bytes(self) -> int:
        return sum(r.remote_bytes for r in self.records)

    def hit_ratio(self) -> float:
        """Aggregate cache hit ratio over every recorded step."""
        hits = sum(r.cache_hits for r in self.records)
        misses = sum(r.cache_misses for r in self.records)
        total = hits + misses
        return hits / total if total else 0.0

    def summary(self) -> dict[str, float]:
        """Aggregate statistics over all recorded steps."""
        if not self.records:
            return {"steps": 0}
        n = len(self.records)
        hits = sum(r.cache_hits for r in self.records)
        misses = sum(r.cache_misses for r in self.records)
        return {
            "steps": n,
            "mean_loss": sum(r.loss for r in self.records) / n,
            "remote_bytes_per_step": self.total_remote_bytes() / n,
            "hit_ratio": hits / (hits + misses) if hits + misses else 0.0,
        }

    # ------------------------------------------------------------------- I/O

    _CSV_FIELDS = (
        "worker",
        "iteration",
        "loss",
        "local_bytes",
        "remote_bytes",
        "sim_time",
        "cache_hits",
        "cache_misses",
    )

    def to_csv(self, path: str | os.PathLike[str]) -> None:
        """Write all records as CSV (one row per worker step)."""
        self.export_csv(path, append=False)

    def export_csv(
        self,
        path: str | os.PathLike[str],
        append: bool = False,
        clear: bool = False,
    ) -> None:
        """Write records to ``path``; optionally append and drop them.

        Long serving/training runs checkpoint telemetry periodically:
        ``export_csv(path, append=True, clear=True)`` flushes the records
        gathered since the last call and frees them, so memory stays
        bounded by the flush interval instead of the run length.  The
        header is written only when the file does not yet exist (or is
        being truncated).
        """
        write_header = not append or not os.path.exists(path) or (
            os.path.getsize(path) == 0
        )
        mode = "a" if append else "w"
        with open(path, mode, newline="", encoding="utf-8") as f:
            writer = csv.writer(f)
            if write_header:
                writer.writerow(self._CSV_FIELDS)
            for r in self.records:
                writer.writerow([getattr(r, name) for name in self._CSV_FIELDS])
        if clear:
            self.records.clear()

    _EVENT_CSV_FIELDS = ("worker", "iteration", "kind", "sim_time", "detail")

    def export_events_csv(self, path: str | os.PathLike[str]) -> None:
        """Write the fault-event log as CSV (one row per incident)."""
        with open(path, "w", newline="", encoding="utf-8") as f:
            writer = csv.writer(f)
            writer.writerow(self._EVENT_CSV_FIELDS)
            for e in self.events:
                writer.writerow([getattr(e, name) for name in self._EVENT_CSV_FIELDS])

    @classmethod
    def from_csv(cls, path: str | os.PathLike[str]) -> "Telemetry":
        """Load records written by :meth:`to_csv`."""
        telemetry = cls()
        with open(path, newline="", encoding="utf-8") as f:
            for row in csv.DictReader(f):
                telemetry.add(
                    IterationRecord(
                        worker=int(row["worker"]),
                        iteration=int(row["iteration"]),
                        loss=float(row["loss"]),
                        local_bytes=int(row["local_bytes"]),
                        remote_bytes=int(row["remote_bytes"]),
                        sim_time=float(row["sim_time"]),
                        cache_hits=int(row["cache_hits"]),
                        cache_misses=int(row["cache_misses"]),
                    )
                )
        return telemetry
