"""Multilevel k-way graph partitioner in the style of METIS.

The paper relies on METIS [Karypis & Kumar] to place entities on machines so
that most triples are machine-local.  This module reimplements the same
three-phase multilevel scheme:

1. **Coarsening** — repeatedly contract a heavy-edge matching until the
   graph is small.
2. **Initial partitioning** — greedy graph growing on the coarsest graph.
3. **Uncoarsening + refinement** — project the partition back level by
   level, running boundary Kernighan–Lin/FM moves that reduce edge cut
   while keeping parts balanced.

Vertices carry weights (number of original entities they represent) so the
balance constraint is on entity counts, matching METIS's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import HEAD, TAIL, KnowledgeGraph
from repro.partition.base import Partition, assign_triples
from repro.utils.rng import make_rng


@dataclass
class _Level:
    """One graph in the coarsening hierarchy."""

    adjacency: list[dict[int, int]]  # vertex -> {neighbor: edge weight}
    vertex_weight: np.ndarray  # (n,) how many original vertices each represents
    fine_to_coarse: np.ndarray | None  # map from the finer level, None at the top


def _graph_adjacency(graph: KnowledgeGraph) -> list[dict[int, int]]:
    """Weighted undirected adjacency; parallel triples merge into weight."""
    adjacency: list[dict[int, int]] = [dict() for _ in range(graph.num_entities)]
    heads = graph.triples[:, HEAD]
    tails = graph.triples[:, TAIL]
    for h, t in zip(heads.tolist(), tails.tolist()):
        if h == t:
            continue
        adjacency[h][t] = adjacency[h].get(t, 0) + 1
        adjacency[t][h] = adjacency[t].get(h, 0) + 1
    return adjacency


def _heavy_edge_matching(
    adjacency: list[dict[int, int]],
    vertex_weight: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Match each vertex with its heaviest unmatched neighbor.

    Returns ``match`` where ``match[v]`` is the partner of ``v`` (or ``v``
    itself when unmatched).  Visiting order is randomised, as in METIS, to
    avoid pathological orderings.
    """
    n = len(adjacency)
    match = np.full(n, -1, dtype=np.int64)
    for v in rng.permutation(n):
        v = int(v)
        if match[v] != -1:
            continue
        best, best_w = v, -1
        for u, w in adjacency[v].items():
            if match[u] == -1 and u != v and w > best_w:
                best, best_w = u, w
        match[v] = best
        match[best] = v
    return match


def _contract(
    adjacency: list[dict[int, int]],
    vertex_weight: np.ndarray,
    match: np.ndarray,
) -> _Level:
    """Contract matched pairs into coarse vertices."""
    n = len(adjacency)
    fine_to_coarse = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if fine_to_coarse[v] != -1:
            continue
        fine_to_coarse[v] = next_id
        partner = int(match[v])
        if partner != v:
            fine_to_coarse[partner] = next_id
        next_id += 1

    coarse_adj: list[dict[int, int]] = [dict() for _ in range(next_id)]
    coarse_weight = np.zeros(next_id, dtype=np.int64)
    for v in range(n):
        cv = int(fine_to_coarse[v])
        coarse_weight[cv] += vertex_weight[v]
        row = coarse_adj[cv]
        for u, w in adjacency[v].items():
            cu = int(fine_to_coarse[u])
            if cu == cv:
                continue
            row[cu] = row.get(cu, 0) + w
    return _Level(coarse_adj, coarse_weight, fine_to_coarse)


def _greedy_grow(
    adjacency: list[dict[int, int]],
    vertex_weight: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Initial partition by greedy region growing on the coarsest graph.

    Each part grows from an unassigned seed, always absorbing the frontier
    vertex with the strongest connection to the part, until it reaches the
    target weight.  Leftovers go to the lightest part.
    """
    n = len(adjacency)
    total = int(vertex_weight.sum())
    target = total / k
    part = np.full(n, -1, dtype=np.int64)
    part_weight = np.zeros(k, dtype=np.int64)
    order = list(rng.permutation(n))

    for p in range(k - 1):
        seed = next((int(v) for v in order if part[v] == -1), None)
        if seed is None:
            break
        frontier: dict[int, int] = {seed: 0}
        while frontier and part_weight[p] < target:
            v = max(frontier, key=frontier.get)
            del frontier[v]
            if part[v] != -1:
                continue
            part[v] = p
            part_weight[p] += vertex_weight[v]
            for u, w in adjacency[v].items():
                if part[u] == -1:
                    frontier[u] = frontier.get(u, 0) + w

    for v in range(n):
        if part[v] == -1:
            p = int(np.argmin(part_weight))
            part[v] = p
            part_weight[p] += vertex_weight[v]
    return part


def _refine(
    adjacency: list[dict[int, int]],
    vertex_weight: np.ndarray,
    part: np.ndarray,
    k: int,
    imbalance: float,
    passes: int,
) -> np.ndarray:
    """Boundary FM refinement: greedily move vertices to reduce edge cut.

    A vertex may move to the neighboring part where it has the most edge
    weight, provided the move strictly reduces the cut and keeps every part
    under ``(1 + imbalance) * target`` weight.
    """
    total = int(vertex_weight.sum())
    max_weight = (1.0 + imbalance) * total / k
    part = part.copy()
    part_weight = np.bincount(part, weights=vertex_weight, minlength=k)

    for _ in range(passes):
        moved = 0
        for v in range(len(adjacency)):
            row = adjacency[v]
            if not row:
                continue
            home = int(part[v])
            # Edge weight towards each adjacent part.
            gain_to: dict[int, int] = {}
            for u, w in row.items():
                gain_to[int(part[u])] = gain_to.get(int(part[u]), 0) + w
            internal = gain_to.get(home, 0)
            best_p, best_gain = home, 0
            for p, w in gain_to.items():
                if p == home:
                    continue
                gain = w - internal
                if gain > best_gain and part_weight[p] + vertex_weight[v] <= max_weight:
                    best_p, best_gain = p, gain
            if best_p != home:
                part_weight[home] -= vertex_weight[v]
                part_weight[best_p] += vertex_weight[v]
                part[v] = best_p
                moved += 1
        if moved == 0:
            break
    _rebalance(adjacency, vertex_weight, part, part_weight, k, max_weight)
    return part


def _rebalance(
    adjacency: list[dict[int, int]],
    vertex_weight: np.ndarray,
    part: np.ndarray,
    part_weight: np.ndarray,
    k: int,
    max_weight: float,
) -> None:
    """Force overweight parts under the balance limit (in place).

    Greedy growing can overshoot badly when a single coarse vertex carries
    many original entities, and cut-driven FM moves never fix pure
    imbalance.  This pass moves vertices out of overweight parts into the
    lightest part, lightest vertices first, until every part fits (or no
    movable vertex remains).
    """
    order = np.argsort(vertex_weight)  # move cheap vertices first
    for p in range(k):
        if part_weight[p] <= max_weight:
            continue
        for v in order:
            if part_weight[p] <= max_weight:
                break
            v = int(v)
            if part[v] != p:
                continue
            target = int(np.argmin(part_weight))
            if target == p:
                break
            part_weight[p] -= vertex_weight[v]
            part_weight[target] += vertex_weight[v]
            part[v] = target


class MetisPartitioner:
    """METIS-style multilevel k-way partitioner.

    Parameters
    ----------
    imbalance:
        Allowed part-weight slack (0.05 = parts may exceed the ideal size by
        5%), matching METIS's default ``ufactor``.
    coarsen_to:
        Stop coarsening when the graph has at most ``max(coarsen_to, 8 * k)``
        vertices.
    refine_passes:
        FM passes per uncoarsening level.
    """

    def __init__(
        self,
        imbalance: float = 0.05,
        coarsen_to: int = 128,
        refine_passes: int = 4,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if imbalance < 0:
            raise ValueError(f"imbalance must be >= 0, got {imbalance}")
        self.imbalance = imbalance
        self.coarsen_to = coarsen_to
        self.refine_passes = refine_passes
        self._rng = make_rng(seed)

    def partition(self, graph: KnowledgeGraph, k: int) -> Partition:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        n = graph.num_entities
        if k == 1:
            return assign_triples(graph, np.zeros(n, dtype=np.int64), 1)
        if k >= n:
            # Degenerate: one entity per part (extra parts stay empty).
            return assign_triples(graph, np.arange(n, dtype=np.int64), k)

        # Phase 1: coarsen.
        levels = [_Level(_graph_adjacency(graph), np.ones(n, dtype=np.int64), None)]
        floor = max(self.coarsen_to, 8 * k)
        while len(levels[-1].adjacency) > floor:
            current = levels[-1]
            match = _heavy_edge_matching(
                current.adjacency, current.vertex_weight, self._rng
            )
            coarse = _contract(current.adjacency, current.vertex_weight, match)
            # Stop if coarsening stalls (e.g. star graphs match poorly).
            if len(coarse.adjacency) > 0.95 * len(current.adjacency):
                break
            levels.append(coarse)

        # Phase 2: initial partition on the coarsest level.
        coarsest = levels[-1]
        part = _greedy_grow(
            coarsest.adjacency, coarsest.vertex_weight, k, self._rng
        )
        part = _refine(
            coarsest.adjacency,
            coarsest.vertex_weight,
            part,
            k,
            self.imbalance,
            self.refine_passes,
        )

        # Phase 3: project back and refine at each finer level.
        for i in range(len(levels) - 1, 0, -1):
            fine_to_coarse = levels[i].fine_to_coarse
            assert fine_to_coarse is not None
            part = part[fine_to_coarse]
            part = _refine(
                levels[i - 1].adjacency,
                levels[i - 1].vertex_weight,
                part,
                k,
                self.imbalance,
                self.refine_passes,
            )
        return assign_triples(graph, part, k)
