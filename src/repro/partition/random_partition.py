"""Random entity partitioning — the baseline METIS is compared against."""

from __future__ import annotations

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.partition.base import Partition, assign_triples
from repro.utils.rng import make_rng


class RandomPartitioner:
    """Assign entities to parts uniformly at random (balanced).

    Entities are dealt round-robin over a random permutation, so part sizes
    differ by at most one.
    """

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = make_rng(seed)

    def partition(self, graph: KnowledgeGraph, k: int) -> Partition:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        order = self._rng.permutation(graph.num_entities)
        entity_part = np.empty(graph.num_entities, dtype=np.int64)
        entity_part[order] = np.arange(graph.num_entities) % k
        return assign_triples(graph, entity_part, k)
