"""Partitioner interface and the Partition result object.

A partition assigns every *entity* to one of ``k`` parts (machines).  Each
triple is then assigned to the part owning its head entity, so each worker
trains on a local subgraph while tail entities may live remotely — exactly
the local/cross triple distinction in §V of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.kg.graph import HEAD, KnowledgeGraph


@dataclass
class Partition:
    """Result of partitioning a knowledge graph into ``k`` parts.

    Attributes
    ----------
    entity_part:
        ``(num_entities,)`` array mapping entity id -> part id.
    triple_part:
        ``(num_triples,)`` array mapping triple index -> part id (the part
        of the triple's head entity).
    k:
        Number of parts.
    """

    entity_part: np.ndarray
    triple_part: np.ndarray
    k: int

    def __post_init__(self) -> None:
        self.entity_part = np.asarray(self.entity_part, dtype=np.int64)
        self.triple_part = np.asarray(self.triple_part, dtype=np.int64)
        for name, arr in (("entity_part", self.entity_part), ("triple_part", self.triple_part)):
            if arr.size and (arr.min() < 0 or arr.max() >= self.k):
                raise ValueError(f"{name} contains part ids outside [0, {self.k})")

    def entities_of(self, part: int) -> np.ndarray:
        """Entity ids owned by ``part``."""
        return np.nonzero(self.entity_part == part)[0]

    def triples_of(self, part: int) -> np.ndarray:
        """Triple indices assigned to ``part``."""
        return np.nonzero(self.triple_part == part)[0]

    def part_sizes(self) -> np.ndarray:
        """Entity count per part."""
        return np.bincount(self.entity_part, minlength=self.k)


class Partitioner(Protocol):
    """Anything that can split a knowledge graph into ``k`` parts."""

    def partition(self, graph: KnowledgeGraph, k: int) -> Partition: ...


def assign_triples(graph: KnowledgeGraph, entity_part: np.ndarray, k: int) -> Partition:
    """Build a full :class:`Partition` from an entity assignment.

    Triples follow their head entity, mirroring DGL-KE's layout where a
    worker's local subgraph is the set of triples whose head it owns.
    """
    entity_part = np.asarray(entity_part, dtype=np.int64)
    if len(entity_part) != graph.num_entities:
        raise ValueError(
            f"entity_part has {len(entity_part)} entries for "
            f"{graph.num_entities} entities"
        )
    triple_part = entity_part[graph.triples[:, HEAD]] if len(graph.triples) else np.zeros(0, dtype=np.int64)
    return Partition(entity_part=entity_part, triple_part=triple_part, k=k)
