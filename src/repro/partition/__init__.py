"""Graph partitioning substrate.

HET-KG (following DGL-KE) partitions the knowledge graph across machines
with METIS to minimise cross-machine entity accesses.  This package provides
a METIS-style multilevel k-way partitioner plus a random baseline and
quality metrics (edge cut, balance).
"""

from repro.partition.base import Partition, Partitioner
from repro.partition.random_partition import RandomPartitioner
from repro.partition.metis import MetisPartitioner
from repro.partition.quality import edge_cut, cut_fraction, balance

__all__ = [
    "Partition",
    "Partitioner",
    "RandomPartitioner",
    "MetisPartitioner",
    "edge_cut",
    "cut_fraction",
    "balance",
]
