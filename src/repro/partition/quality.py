"""Partition quality metrics: edge cut and balance."""

from __future__ import annotations

import numpy as np

from repro.kg.graph import HEAD, TAIL, KnowledgeGraph
from repro.partition.base import Partition


def edge_cut(graph: KnowledgeGraph, partition: Partition) -> int:
    """Number of triples whose head and tail live on different parts."""
    if not len(graph.triples):
        return 0
    head_part = partition.entity_part[graph.triples[:, HEAD]]
    tail_part = partition.entity_part[graph.triples[:, TAIL]]
    return int(np.count_nonzero(head_part != tail_part))


def cut_fraction(graph: KnowledgeGraph, partition: Partition) -> float:
    """Edge cut as a fraction of all triples (0 = perfectly local)."""
    n = graph.num_triples
    if n == 0:
        return 0.0
    return edge_cut(graph, partition) / n


def balance(partition: Partition) -> float:
    """Largest part size over the ideal size (1.0 = perfectly balanced).

    METIS's default tolerance corresponds to a balance of about 1.05.
    """
    sizes = partition.part_sizes()
    total = sizes.sum()
    if total == 0:
        return 1.0
    ideal = total / partition.k
    return float(sizes.max() / ideal)
