"""Cost models standing in for the paper's testbed hardware.

The paper's cluster: 4 machines, 32 Xeon cores each, 1 Gbps Ethernet.  We
replace the hardware with two explicit cost models:

* :class:`NetworkModel` — time to move bytes between machines (remote) or
  through shared memory to the co-located server shard (local).
* :class:`ComputeModel` — time to score/backprop a batch of triples on one
  worker's cores.

These models are deliberately simple (affine in bytes/flops) — the paper's
claims are about *communication volume*, which we measure exactly; the
models only convert volumes into seconds so results can be reported in the
paper's units.  Defaults approximate the paper's testbed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.utils.validation import check_positive

#: Wire size of one embedding element (float32).
BYTES_PER_ELEMENT = 4


@dataclass
class CommRecord:
    """Byte/message counts for one pull or push operation.

    ``retransmit_bytes`` annotates how many of the counted bytes were
    wasted on failed/retried attempts (fault injection): those bytes are
    *already included* in ``local_bytes``/``remote_bytes`` — the wire
    carried them — so the field never contributes to :attr:`total_bytes`;
    it exists so reports can split useful traffic from fault overhead.
    """

    local_bytes: int = 0
    remote_bytes: int = 0
    local_messages: int = 0
    remote_messages: int = 0
    retransmit_bytes: int = 0

    def merge(self, other: "CommRecord") -> None:
        self.local_bytes += other.local_bytes
        self.remote_bytes += other.remote_bytes
        self.local_messages += other.local_messages
        self.remote_messages += other.remote_messages
        self.retransmit_bytes += other.retransmit_bytes

    @property
    def total_bytes(self) -> int:
        return self.local_bytes + self.remote_bytes

    @property
    def total_messages(self) -> int:
        return self.local_messages + self.remote_messages

    def copy(self) -> "CommRecord":
        return CommRecord(
            local_bytes=self.local_bytes,
            remote_bytes=self.remote_bytes,
            local_messages=self.local_messages,
            remote_messages=self.remote_messages,
            retransmit_bytes=self.retransmit_bytes,
        )

    def difference(self, baseline: "CommRecord") -> "CommRecord":
        """Traffic accumulated since ``baseline`` (a prior snapshot)."""
        return CommRecord(
            local_bytes=self.local_bytes - baseline.local_bytes,
            remote_bytes=self.remote_bytes - baseline.remote_bytes,
            local_messages=self.local_messages - baseline.local_messages,
            remote_messages=self.remote_messages - baseline.remote_messages,
            retransmit_bytes=self.retransmit_bytes - baseline.retransmit_bytes,
        )


@dataclass
class NetworkModel:
    """Affine latency + bandwidth cost model for the cluster fabric.

    Parameters
    ----------
    bandwidth:
        Remote link bandwidth in bytes/second (default 1 Gbps).
    latency:
        Per-remote-message round-trip setup cost in seconds.
    local_bandwidth:
        Shared-memory bandwidth for accesses to the co-located shard.
    local_latency:
        Per-local-access overhead (IPC/shared-memory handshake).
    """

    bandwidth: float = 125e6  # 1 Gbps
    latency: float = 2e-4
    local_bandwidth: float = 12.5e9  # ~100 Gbps shared memory
    local_latency: float = 2e-6

    #: Cumulative traffic routed through this model (for reports).
    totals: CommRecord = field(default_factory=CommRecord)

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)
        check_positive("local_bandwidth", self.local_bandwidth)
        if self.latency < 0 or self.local_latency < 0:
            raise ValueError("latencies must be non-negative")

    def cost(self, record: CommRecord) -> float:
        """Seconds to complete the transfers described by ``record``.

        Pure estimate: does **not** touch :attr:`totals`.  Safe for
        what-if costing, tracing, and calling any number of times.
        """
        remote = (
            record.remote_messages * self.latency
            + record.remote_bytes / self.bandwidth
        )
        local = (
            record.local_messages * self.local_latency
            + record.local_bytes / self.local_bandwidth
        )
        return remote + local

    def charge(self, record: CommRecord) -> float:
        """Account ``record`` into :attr:`totals` and return its cost.

        The accounting invariant the comm tables rest on: every
        :class:`CommRecord` produced by the simulation is charged
        **exactly once**, by the component whose clock advances for it.
        """
        self.totals.merge(record)
        return self.cost(record)

    def time_for(self, record: CommRecord) -> float:
        """Deprecated: estimating and accounting in one call double-counts.

        Historic behaviour (kept for compatibility): identical to
        :meth:`charge`.  Callers that only want an estimate must use
        :meth:`cost`; callers accounting real traffic must use
        :meth:`charge`.
        """
        warnings.warn(
            "NetworkModel.time_for() mutates totals as a side effect and is "
            "deprecated; use cost() for pure estimates or charge() to "
            "account traffic",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.charge(record)

    def reset_totals(self) -> None:
        self.totals = CommRecord()


@dataclass
class ComputeModel:
    """Throughput model for one worker's scoring/backprop compute.

    ``throughput`` is in embedding-element operations per second: scoring a
    triple costs about ``score_factor * dim`` element ops and backprop
    roughly doubles it.  The default is tuned so a 32-core CPU worker
    processes on the order of 10^9 element-ops per second — the right
    ballpark for the paper's testbed and, more importantly, a *fixed*
    constant across all compared systems, so ratios are fair.
    """

    throughput: float = 2e9
    score_factor: float = 3.0

    def __post_init__(self) -> None:
        check_positive("throughput", self.throughput)
        check_positive("score_factor", self.score_factor)

    def batch_time(self, num_scores: int, dim: int, backward: bool = True) -> float:
        """Seconds to score (and optionally backprop) ``num_scores`` triples."""
        ops = self.score_factor * num_scores * dim
        if backward:
            ops *= 2.0
        return ops / self.throughput

    def overhead_time(self, num_items: int, per_item_ops: float = 10.0) -> float:
        """Seconds of bookkeeping proportional to ``num_items`` (e.g.
        prefetch counting, cache table rebuilds)."""
        return num_items * per_item_ops / self.throughput
