"""Wire compression for embedding traffic — an extension beyond the paper.

The paper reduces communication by *avoiding* transfers (caching); an
orthogonal lever its future-work discussion points towards is *shrinking*
transfers.  This module provides lossy wire codecs that (a) cut the
metered bytes by a fixed factor and (b) inject the corresponding
quantization error into the payload, so accuracy impact is measured
honestly rather than assumed away.

Codecs:

* ``none``  — identity, 4 bytes/element (float32 wire format).
* ``fp16``  — half precision, 2 bytes/element; values are round-tripped
  through ``np.float16``.
* ``int8``  — per-row linear quantization to 8 bits plus a float32
  scale/offset per row, ~1 byte/element.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.ps.network import BYTES_PER_ELEMENT


class Compressor(ABC):
    """A lossy wire codec for embedding/gradient rows."""

    #: Registry name.
    name: str = "base"

    @property
    @abstractmethod
    def bytes_per_element(self) -> float:
        """Wire cost per embedding element, in bytes."""

    @abstractmethod
    def roundtrip(self, rows: np.ndarray) -> np.ndarray:
        """Encode + decode ``rows``, returning the lossy reconstruction."""

    @property
    def byte_factor(self) -> float:
        """Wire bytes relative to uncompressed float32."""
        return self.bytes_per_element / BYTES_PER_ELEMENT


class NoCompression(Compressor):
    """Identity codec (the default float32 wire format)."""

    name = "none"

    @property
    def bytes_per_element(self) -> float:
        return float(BYTES_PER_ELEMENT)

    def roundtrip(self, rows: np.ndarray) -> np.ndarray:
        return rows


class Fp16Compression(Compressor):
    """Half-precision wire format: 2 bytes/element."""

    name = "fp16"

    @property
    def bytes_per_element(self) -> float:
        return 2.0

    def roundtrip(self, rows: np.ndarray) -> np.ndarray:
        return rows.astype(np.float16).astype(np.float64)


class Int8Compression(Compressor):
    """Per-row linear 8-bit quantization: ~1 byte/element.

    Each row is mapped to 256 levels between its min and max; the float32
    scale and offset per row are charged as 8 extra bytes.
    """

    name = "int8"

    def __init__(self) -> None:
        self._levels = 255

    @property
    def bytes_per_element(self) -> float:
        return 1.0

    def roundtrip(self, rows: np.ndarray) -> np.ndarray:
        if rows.size == 0:
            return rows
        lo = rows.min(axis=1, keepdims=True)
        hi = rows.max(axis=1, keepdims=True)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        q = np.round((rows - lo) / span * self._levels)
        return lo + q / self._levels * span


_COMPRESSORS = {
    "none": NoCompression,
    "fp16": Fp16Compression,
    "int8": Int8Compression,
}


def get_compressor(name: str) -> Compressor:
    """Instantiate a codec by name (``"none"``, ``"fp16"``, ``"int8"``)."""
    try:
        return _COMPRESSORS[name]()
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; available: {sorted(_COMPRESSORS)}"
        ) from None
