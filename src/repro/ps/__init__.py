"""Parameter-server substrate: sharded embedding storage over a simulated
cluster network.

The co-located PS architecture of the paper: every machine runs both a
server shard (owning a slice of the embeddings) and a worker.  Workers pull
embedding rows and push gradients; accesses to the local shard go through
"shared memory" (cheap), accesses to other machines cross the simulated
1 Gbps network (expensive).  All traffic is metered, which is what produces
the paper's communication-time results.
"""

from repro.ps.network import NetworkModel, ComputeModel, CommRecord
from repro.ps.kvstore import ShardedKVStore
from repro.ps.server import ParameterServer

__all__ = [
    "NetworkModel",
    "ComputeModel",
    "CommRecord",
    "ShardedKVStore",
    "ParameterServer",
]
