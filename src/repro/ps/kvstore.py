"""Sharded key-value store for embedding tables.

Reimplements (in process) the C++ KVStore DGL provides: the full entity and
relation tables are split across machines; every row has one owner machine.
Entity rows are owned by the machine METIS assigned the entity to (the
co-located layout of §V); relation rows are dealt round-robin since
relations are global.

The store itself is storage + ownership only; traffic metering and
optimizer application live in :class:`repro.ps.server.ParameterServer`.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_in, check_positive

#: Table kinds recognised by the store.
ENTITY, RELATION = "entity", "relation"


class ShardedKVStore:
    """Embedding tables plus a row->machine ownership map.

    Parameters
    ----------
    entity_table, relation_table:
        Dense ``(count, width)`` arrays holding all embeddings.  (Stored
        dense for simplicity; ownership determines simulated placement.)
    entity_owner:
        ``(num_entities,)`` machine id per entity row.
    num_machines:
        Cluster size; relation rows are assigned ``id % num_machines``.
    backing:
        ``"resident"`` (default) keeps the dense arrays as-is — bit-identical
        to the pre-tiering store.  ``"tiered"`` replaces each table with a
        :class:`~repro.tier.store.TieredTable` (hot/warm/cold residency
        under a byte budget); the tables still answer every ndarray idiom
        the optimizers and evaluators use.
    tier:
        Optional :class:`~repro.tier.runtime.TierConfig` for the tiered
        backing (budget, policy, scratch directory).  Ignored when
        ``backing="resident"``.
    """

    def __init__(
        self,
        entity_table: np.ndarray,
        relation_table: np.ndarray,
        entity_owner: np.ndarray,
        num_machines: int,
        backing: str = "resident",
        tier=None,
    ) -> None:
        check_positive("num_machines", num_machines)
        check_in("backing", backing, ("resident", "tiered"))
        entity_owner = np.asarray(entity_owner, dtype=np.int64)
        if len(entity_owner) != len(entity_table):
            raise ValueError(
                f"entity_owner has {len(entity_owner)} entries for "
                f"{len(entity_table)} entity rows"
            )
        if entity_owner.size and (
            entity_owner.min() < 0 or entity_owner.max() >= num_machines
        ):
            raise ValueError("entity_owner contains machine ids out of range")
        self._tables = {ENTITY: entity_table, RELATION: relation_table}
        self.backing = backing
        self.tier = None
        if backing == "tiered":
            # Imported lazily: the resident path must not pay for (or
            # depend on) the tier subsystem.
            from repro.tier.runtime import TierRuntime

            self.tier = TierRuntime(self._tables, tier)
            self._tables = dict(self.tier.tables)
        self._owners = {
            ENTITY: entity_owner,
            RELATION: np.arange(len(relation_table), dtype=np.int64) % num_machines,
        }
        self.num_machines = num_machines

    # ----------------------------------------------------------------- access

    def table(self, kind: str) -> np.ndarray:
        """The backing array for ``kind`` (``"entity"`` or ``"relation"``)."""
        try:
            return self._tables[kind]
        except KeyError:
            raise KeyError(f"unknown table kind {kind!r}") from None

    def owners(self, kind: str, ids: np.ndarray) -> np.ndarray:
        """Owner machine of each row in ``ids``."""
        return self._owners[kind][np.asarray(ids, dtype=np.int64)]

    def row_width(self, kind: str) -> int:
        return self.table(kind).shape[1]

    def read(self, kind: str, ids: np.ndarray) -> np.ndarray:
        """Copy of the rows ``ids`` (a pull's payload)."""
        return self.table(kind)[np.asarray(ids, dtype=np.int64)].copy()

    def write(self, kind: str, ids: np.ndarray, rows: np.ndarray) -> None:
        """Overwrite rows (used for checkpoint restore, not training)."""
        self.table(kind)[np.asarray(ids, dtype=np.int64)] = rows

    # ----------------------------------------------------------------- growth

    def grow(
        self, kind: str, rows: np.ndarray, owners: np.ndarray | None = None
    ) -> np.ndarray:
        """Append freshly-initialised ``rows`` to the ``kind`` table.

        Online ingestion (:mod:`repro.stream`) introduces new entities and
        relations mid-run; their embedding rows are appended here and the
        ownership map grows with them.  ``owners`` gives the owning machine
        per new row; when omitted, entity rows are dealt round-robin
        continuing from the current row count, and relation rows keep the
        store's ``id % num_machines`` layout.

        Returns the ids assigned to the new rows (``[old, old + n)``).
        """
        table = self.table(kind)
        rows = np.asarray(rows, dtype=table.dtype).reshape(-1, table.shape[1])
        old = len(table)
        new_ids = np.arange(old, old + len(rows), dtype=np.int64)
        if len(rows) == 0:
            return new_ids
        if owners is None:
            owners = new_ids % self.num_machines
        else:
            owners = np.asarray(owners, dtype=np.int64)
            if len(owners) != len(rows):
                raise ValueError(
                    f"grow got {len(owners)} owners for {len(rows)} rows"
                )
            if owners.size and (
                owners.min() < 0 or owners.max() >= self.num_machines
            ):
                raise ValueError("grow owners contain machine ids out of range")
        if self.tier is not None:
            # Tiered tables extend their backing file in place — streaming
            # growth must not rewrite the whole shard.
            table.grow(rows)
        else:
            self._tables[kind] = self._extend_table(kind, table, rows)
        self._owners[kind] = np.concatenate([self._owners[kind], owners])
        return new_ids

    def _extend_table(
        self, kind: str, table: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Return ``table`` with ``rows`` appended (resident backing).

        Subclass hook: shared-memory stores (:class:`repro.mp.shm.
        SharedKVStore`) grow their segment in place instead of
        reallocating, which attached peer processes could not survive.
        """
        return np.concatenate([table, rows])

    # ------------------------------------------------------------ bookkeeping

    def split_local_remote(
        self, kind: str, ids: np.ndarray, machine: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Partition ``ids`` into (local-to-machine, remote) sub-arrays."""
        ids = np.asarray(ids, dtype=np.int64)
        owners = self.owners(kind, ids)
        local_mask = owners == machine
        return ids[local_mask], ids[~local_mask]

    def owned_ids(self, kind: str, machine: int) -> np.ndarray:
        """All row ids whose shard lives on ``machine``.

        Used by crash recovery: when a machine dies, exactly the rows it
        owned are lost and must be restored from the last checkpoint.
        """
        return np.flatnonzero(self._owners[kind] == machine).astype(np.int64)

    def remote_machine_count(self, kind: str, ids: np.ndarray, machine: int) -> int:
        """Number of distinct remote machines holding rows in ``ids``."""
        ids = np.asarray(ids, dtype=np.int64)
        owners = self.owners(kind, ids)
        others = np.unique(owners[owners != machine])
        return len(others)

    def memory_bytes(self) -> int:
        """Total *logical* embedding storage in bytes (for capacity reports).

        Backing-independent: a tiered table reports the bytes its rows
        would occupy dense, so existing capacity math is unchanged.  Use
        :meth:`memory_report` for the per-tier resident breakdown.
        """
        return int(sum(t.nbytes for t in self._tables.values()))

    def resident_bytes(self) -> int:
        """Bytes actually held in RAM right now (== logical when resident)."""
        if self.tier is not None:
            return sum(t.resident_bytes() for t in self._tables.values())
        return self.memory_bytes()

    def memory_report(self) -> dict:
        """Per-kind/per-tier byte breakdown for telemetry and reports."""
        if self.tier is not None:
            return self.tier.memory_report()
        tables = {
            kind: {
                "backing": "resident",
                "rows": int(len(table)),
                "width": int(table.shape[1]),
                "resident_bytes": int(table.nbytes),
                "logical_bytes": int(table.nbytes),
            }
            for kind, table in sorted(self._tables.items())
        }
        total = self.memory_bytes()
        return {
            "backing": "resident",
            "budget_bytes": None,
            "resident_bytes": total,
            "logical_bytes": total,
            "tables": tables,
        }

    def close(self) -> None:
        """Release tiered scratch files (no-op for the resident backing)."""
        if self.tier is not None:
            self.tier.close()
