"""Sharded key-value store for embedding tables.

Reimplements (in process) the C++ KVStore DGL provides: the full entity and
relation tables are split across machines; every row has one owner machine.
Entity rows are owned by the machine METIS assigned the entity to (the
co-located layout of §V); relation rows are dealt round-robin since
relations are global.

The store itself is storage + ownership only; traffic metering and
optimizer application live in :class:`repro.ps.server.ParameterServer`.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

#: Table kinds recognised by the store.
ENTITY, RELATION = "entity", "relation"


class ShardedKVStore:
    """Embedding tables plus a row->machine ownership map.

    Parameters
    ----------
    entity_table, relation_table:
        Dense ``(count, width)`` arrays holding all embeddings.  (Stored
        dense for simplicity; ownership determines simulated placement.)
    entity_owner:
        ``(num_entities,)`` machine id per entity row.
    num_machines:
        Cluster size; relation rows are assigned ``id % num_machines``.
    """

    def __init__(
        self,
        entity_table: np.ndarray,
        relation_table: np.ndarray,
        entity_owner: np.ndarray,
        num_machines: int,
    ) -> None:
        check_positive("num_machines", num_machines)
        entity_owner = np.asarray(entity_owner, dtype=np.int64)
        if len(entity_owner) != len(entity_table):
            raise ValueError(
                f"entity_owner has {len(entity_owner)} entries for "
                f"{len(entity_table)} entity rows"
            )
        if entity_owner.size and (
            entity_owner.min() < 0 or entity_owner.max() >= num_machines
        ):
            raise ValueError("entity_owner contains machine ids out of range")
        self._tables = {ENTITY: entity_table, RELATION: relation_table}
        self._owners = {
            ENTITY: entity_owner,
            RELATION: np.arange(len(relation_table), dtype=np.int64) % num_machines,
        }
        self.num_machines = num_machines

    # ----------------------------------------------------------------- access

    def table(self, kind: str) -> np.ndarray:
        """The backing array for ``kind`` (``"entity"`` or ``"relation"``)."""
        try:
            return self._tables[kind]
        except KeyError:
            raise KeyError(f"unknown table kind {kind!r}") from None

    def owners(self, kind: str, ids: np.ndarray) -> np.ndarray:
        """Owner machine of each row in ``ids``."""
        return self._owners[kind][np.asarray(ids, dtype=np.int64)]

    def row_width(self, kind: str) -> int:
        return self.table(kind).shape[1]

    def read(self, kind: str, ids: np.ndarray) -> np.ndarray:
        """Copy of the rows ``ids`` (a pull's payload)."""
        return self.table(kind)[np.asarray(ids, dtype=np.int64)].copy()

    def write(self, kind: str, ids: np.ndarray, rows: np.ndarray) -> None:
        """Overwrite rows (used for checkpoint restore, not training)."""
        self.table(kind)[np.asarray(ids, dtype=np.int64)] = rows

    # ----------------------------------------------------------------- growth

    def grow(
        self, kind: str, rows: np.ndarray, owners: np.ndarray | None = None
    ) -> np.ndarray:
        """Append freshly-initialised ``rows`` to the ``kind`` table.

        Online ingestion (:mod:`repro.stream`) introduces new entities and
        relations mid-run; their embedding rows are appended here and the
        ownership map grows with them.  ``owners`` gives the owning machine
        per new row; when omitted, entity rows are dealt round-robin
        continuing from the current row count, and relation rows keep the
        store's ``id % num_machines`` layout.

        Returns the ids assigned to the new rows (``[old, old + n)``).
        """
        table = self.table(kind)
        rows = np.asarray(rows, dtype=table.dtype).reshape(-1, table.shape[1])
        old = len(table)
        new_ids = np.arange(old, old + len(rows), dtype=np.int64)
        if len(rows) == 0:
            return new_ids
        if owners is None:
            owners = new_ids % self.num_machines
        else:
            owners = np.asarray(owners, dtype=np.int64)
            if len(owners) != len(rows):
                raise ValueError(
                    f"grow got {len(owners)} owners for {len(rows)} rows"
                )
            if owners.size and (
                owners.min() < 0 or owners.max() >= self.num_machines
            ):
                raise ValueError("grow owners contain machine ids out of range")
        self._tables[kind] = np.concatenate([table, rows])
        self._owners[kind] = np.concatenate([self._owners[kind], owners])
        return new_ids

    # ------------------------------------------------------------ bookkeeping

    def split_local_remote(
        self, kind: str, ids: np.ndarray, machine: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Partition ``ids`` into (local-to-machine, remote) sub-arrays."""
        ids = np.asarray(ids, dtype=np.int64)
        owners = self.owners(kind, ids)
        local_mask = owners == machine
        return ids[local_mask], ids[~local_mask]

    def owned_ids(self, kind: str, machine: int) -> np.ndarray:
        """All row ids whose shard lives on ``machine``.

        Used by crash recovery: when a machine dies, exactly the rows it
        owned are lost and must be restored from the last checkpoint.
        """
        return np.flatnonzero(self._owners[kind] == machine).astype(np.int64)

    def remote_machine_count(self, kind: str, ids: np.ndarray, machine: int) -> int:
        """Number of distinct remote machines holding rows in ``ids``."""
        ids = np.asarray(ids, dtype=np.int64)
        owners = self.owners(kind, ids)
        others = np.unique(owners[owners != machine])
        return len(others)

    def memory_bytes(self) -> int:
        """Total embedding storage in bytes (for capacity reports)."""
        return int(sum(t.nbytes for t in self._tables.values()))
