"""Parameter server: metered pull/push over the sharded KVStore.

Implements the server side of the paper's Algorithm 4:

* ``pull``  — return the latest embedding rows for a set of ids
  (``localPull``/``remotePull`` folded into one call that meters local and
  remote traffic separately).
* ``push``  — receive gradients and immediately apply the server-side
  optimizer (sparse AdaGrad), i.e. the asynchronous-parallel protocol: no
  barrier, gradients update the global tables as they arrive.

Every call returns a :class:`~repro.ps.network.CommRecord`; the caller
(worker) converts it to simulated seconds via its machine's
:class:`~repro.ps.network.NetworkModel` and advances its clock.
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracer import NULL_SCOPE, TraceScope
from repro.optim.base import SparseOptimizer
from repro.ps.compression import Compressor, NoCompression
from repro.ps.kvstore import ShardedKVStore
from repro.ps.network import BYTES_PER_ELEMENT, CommRecord


class ParameterServer:
    """Global embedding state shared by all simulated machines.

    Parameters
    ----------
    store:
        The sharded tables with ownership.
    optimizer:
        Server-side optimizer applied on push (the paper uses AdaGrad).
    byte_scale:
        Multiplier applied to metered bytes.  Used to charge traffic at the
        paper's embedding dimension (d = 400) while the actual tables stay
        small for tractability; see ``TrainingConfig.wire_dim``.
    compressor:
        Optional lossy wire codec applied to *remote* transfers only
        (local shared-memory access moves raw float64 rows).  Shrinks
        metered remote bytes by the codec's factor and injects the codec's
        quantization error into remote payloads.
    """

    def __init__(
        self,
        store: ShardedKVStore,
        optimizer: SparseOptimizer,
        byte_scale: float = 1.0,
        compressor: Compressor | None = None,
    ) -> None:
        if byte_scale <= 0:
            raise ValueError(f"byte_scale must be positive, got {byte_scale}")
        self.store = store
        self.optimizer = optimizer
        self.byte_scale = byte_scale
        self.compressor = compressor if compressor is not None else NoCompression()
        #: Monotone update counter, bumped once per push; used by caches to
        #: reason about staleness.
        self.version = 0
        #: Per-machine observability scopes (the PS is shared, so spans are
        #: timestamped with the *calling* worker's clock).  Populated by
        #: :meth:`bind_trace`; machines without a scope trace for free.
        self._trace_scopes: dict[int, TraceScope] = {}

    def bind_trace(self, machine: int, scope: TraceScope) -> None:
        """Attach an observability scope for calls made by ``machine``."""
        self._trace_scopes[machine] = scope

    def _trace(self, machine: int):
        return self._trace_scopes.get(machine, NULL_SCOPE)

    # ------------------------------------------------------------------ pulls

    def pull(
        self, kind: str, ids: np.ndarray, machine: int
    ) -> tuple[np.ndarray, CommRecord]:
        """Fetch rows ``ids`` for a worker on ``machine``.

        Returns ``(rows, comm)`` where ``comm`` meters the bytes that came
        from the local shard vs over the network.  Rows are returned in the
        order of ``ids``.
        """
        ids = np.asarray(ids, dtype=np.int64)
        with self._trace(machine).span("ps.pull", "ps", kind=kind) as span:
            rows = self.store.read(kind, ids)
            # One ownership gather feeds both the compression split and the
            # traffic metering (previously three gathers + two np.unique).
            owners = self.store.owners(kind, ids)
            remote = owners != machine
            if remote.any():
                rows[remote] = self.compressor.roundtrip(rows[remote])
            comm = self._meter_owned(kind, owners, machine)
            span.set(
                rows=len(ids),
                bytes=comm.total_bytes,
                remote_bytes=comm.remote_bytes,
            )
        return rows, comm

    # ----------------------------------------------------------------- pushes

    def push(
        self, kind: str, ids: np.ndarray, grads: np.ndarray, machine: int
    ) -> CommRecord:
        """Send gradients for rows ``ids``; the server applies the optimizer
        immediately (asynchronous protocol, no barrier)."""
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) != len(grads):
            raise ValueError(
                f"push got {len(ids)} ids but {len(grads)} gradient rows"
            )
        with self._trace(machine).span("ps.push", "ps", kind=kind) as span:
            owners = self.store.owners(kind, ids)
            comm = self._meter_owned(kind, owners, machine)
            remote = owners != machine
            if remote.any():
                grads = np.asarray(grads, dtype=np.float64).copy()
                grads[remote] = self.compressor.roundtrip(grads[remote])
            self.optimizer.update(kind, self.store.table(kind), ids, grads)
            self.version += 1
            span.set(
                rows=len(ids),
                bytes=comm.total_bytes,
                remote_bytes=comm.remote_bytes,
            )
        return comm

    # --------------------------------------------------------------- metering

    def meter(self, kind: str, ids: np.ndarray, machine: int) -> CommRecord:
        """Public traffic estimate for moving rows ``ids`` to/from
        ``machine`` **without** touching any state.

        The fault-injection RPC shim uses this to account the wire cost of
        attempts whose payload was lost in transit (a dropped push must not
        apply the optimizer, but its bytes still crossed the network).
        """
        return self._meter(kind, np.asarray(ids, dtype=np.int64), machine)

    def touched_shards(self, kind: str, ids: np.ndarray) -> np.ndarray:
        """Distinct shard (machine) ids an operation on ``ids`` contacts."""
        return np.unique(self.store.owners(kind, np.asarray(ids, dtype=np.int64)))

    # ---------------------------------------------------------------- private

    def _meter(self, kind: str, ids: np.ndarray, machine: int) -> CommRecord:
        """Byte/message accounting for moving rows ``ids`` to/from
        ``machine``.  One message per contacted server shard."""
        return self._meter_owned(kind, self.store.owners(kind, ids), machine)

    def _meter_owned(
        self, kind: str, owners: np.ndarray, machine: int
    ) -> CommRecord:
        """Metering from a precomputed ownership array.

        ``pull``/``push`` gather ownership once and reuse it here, instead
        of the previous ``split_local_remote`` + ``remote_machine_count``
        pair that re-gathered ``owners[ids]`` twice more and ran two
        ``np.unique`` passes; the local/remote split and the distinct-shard
        count both derive from one ``np.bincount`` over the gather (owner
        ids are dense machine indices, so counting beats sorting).
        """
        row_bytes = self.store.row_width(kind) * BYTES_PER_ELEMENT * self.byte_scale
        counts = np.bincount(owners)
        n_local = int(counts[machine]) if machine < len(counts) else 0
        n_remote = len(owners) - n_local
        present = counts > 0
        if machine < len(counts):
            present[machine] = False
        remote_shards = int(present.sum())
        return CommRecord(
            local_bytes=int(n_local * row_bytes),
            remote_bytes=int(
                n_remote * row_bytes * self.compressor.byte_factor
            ),
            local_messages=1 if n_local else 0,
            remote_messages=remote_shards,
        )
