"""HET-KG reproduction: communication-efficient distributed knowledge graph
embedding training via hotness-aware caches.

Quickstart
----------
>>> from repro import generate_dataset, split_triples, TrainingConfig, make_trainer
>>> graph = generate_dataset("fb15k", scale=0.02)
>>> split = split_triples(graph, seed=0)
>>> config = TrainingConfig(model="transe", epochs=2, cache_strategy="dps")
>>> trainer = make_trainer("hetkg-d", config)
>>> result = trainer.train(split.train, eval_graph=split.test)
>>> result.sim_time > 0
True

See :mod:`repro.experiments` for runners that regenerate every table and
figure in the paper's evaluation section.
"""

from repro.core.config import TrainingConfig
from repro.core.trainer import HETKGTrainer, TrainResult, make_trainer
from repro.core.baselines import DGLKETrainer, PBGTrainer
from repro.core.evaluation import evaluate_link_prediction, LinkPredictionResult
from repro.core.classification import classify_triples, ClassificationResult
from repro.core.checkpoint import save_checkpoint, load_checkpoint
from repro.core.telemetry import Telemetry, IterationRecord
from repro.kg.graph import KnowledgeGraph
from repro.kg.datasets import (
    DatasetSpec,
    FB15K_SPEC,
    WN18_SPEC,
    FREEBASE86M_SPEC,
    generate_dataset,
    load_tsv,
    save_tsv,
)
from repro.kg.splits import Split, split_triples
from repro.models.base import get_model, KGEModel, MODEL_REGISTRY
from repro.cache.strategies import ConstantPartialStale, DynamicPartialStale
from repro.cache.sync import HotEmbeddingCache
from repro.serving import (
    EmbeddingStore,
    QueryBatcher,
    ServingCache,
    ServingFrontend,
    ServingReport,
    WorkloadSpec,
    ZipfianWorkload,
)
from repro.obs import Tracer, get_tracer, set_tracer

__version__ = "1.0.0"

__all__ = [
    "TrainingConfig",
    "HETKGTrainer",
    "DGLKETrainer",
    "PBGTrainer",
    "TrainResult",
    "make_trainer",
    "evaluate_link_prediction",
    "LinkPredictionResult",
    "classify_triples",
    "ClassificationResult",
    "save_checkpoint",
    "load_checkpoint",
    "Telemetry",
    "IterationRecord",
    "KnowledgeGraph",
    "DatasetSpec",
    "FB15K_SPEC",
    "WN18_SPEC",
    "FREEBASE86M_SPEC",
    "generate_dataset",
    "load_tsv",
    "save_tsv",
    "Split",
    "split_triples",
    "get_model",
    "KGEModel",
    "MODEL_REGISTRY",
    "ConstantPartialStale",
    "DynamicPartialStale",
    "HotEmbeddingCache",
    "EmbeddingStore",
    "QueryBatcher",
    "ServingCache",
    "ServingFrontend",
    "ServingReport",
    "WorkloadSpec",
    "ZipfianWorkload",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "__version__",
]
