"""Hotness-drift detection and the drift-adaptive cache strategy.

The paper's DPS rebuilds the hot set every ``D`` iterations whether the
workload moved or not; CPS never rebuilds at all.  ADAPTIVE sits between
the two: it *watches* each prefetch window and rebuilds only when the hot
set actually drifted, judged by

* the **Jaccard overlap** between the window's top-k ids and the cache's
  current membership falling below a threshold, or
* an **EWMA of the coverage proxy** (fraction of window accesses the
  current membership would serve) dropping below the same threshold.

Between triggers it keeps the current membership (CPS-cheap); on a
trigger it rebuilds from the *current* window's exact access counts — the
prefetched batches it is about to train on, the same ground truth DPS
uses, but observed at half DPS's granularity, so the membership is
fresher when drift is fast.  A decayed exponential average of all windows
seen so far feeds the drift decision and re-tunes the entity/relation
slot split toward the observed access mix (history is deliberately kept
*out* of the membership itself: the upcoming window's counts are not an
estimate but the truth, and mixing stale windows in can only dilute it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.filtering import HotSet, filter_hot_ids
from repro.cache.prefetch import PrefetchResult, prefetch
from repro.cache.strategies import HotEmbeddingStrategy
from repro.sampling.minibatch import EpochSampler
from repro.sampling.negative import MiniBatch
from repro.utils.validation import check_fraction, check_positive


def _top_ids_float(counts: dict[int, float], k: int) -> np.ndarray:
    """Top-``k`` ids of a float-valued count dict, hottest first.

    :func:`repro.cache.filtering._top_ids` coerces counts to int64, which
    would truncate the decayed (fractional) accumulators to meaningless
    ties — so ADAPTIVE ranks floats directly.  Ties break by id ascending,
    matching the integer filter's determinism contract.
    """
    if k <= 0 or not counts:
        return np.empty(0, dtype=np.int64)
    n = len(counts)
    ids = np.fromiter(counts.keys(), dtype=np.int64, count=n)
    vals = np.fromiter(counts.values(), dtype=np.float64, count=n)
    order = np.lexsort((ids, -vals))
    return ids[order[:k]]


def _decay_into(
    acc: dict[int, float], window: dict[int, int], decay: float
) -> None:
    """``acc = decay * acc + window`` in place."""
    if decay == 0.0:
        acc.clear()
    elif decay != 1.0:
        for key in acc:
            acc[key] *= decay
    for key, count in window.items():
        acc[key] = acc.get(key, 0.0) + count


def _jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard overlap of two id arrays (1.0 when both are empty)."""
    if len(a) == 0 and len(b) == 0:
        return 1.0
    inter = len(np.intersect1d(a, b, assume_unique=False))
    union = len(np.union1d(a, b))
    return inter / union if union else 1.0


@dataclass
class DriftSignal:
    """One window's drift measurement (telemetry / experiment reporting)."""

    jaccard: float
    coverage: float
    coverage_ewma: float
    candidate_coverage: float
    triggered: bool


class DriftDetector:
    """Windowed hotness-drift detector.

    Parameters
    ----------
    threshold:
        Trigger when the Jaccard overlap *or* the coverage EWMA falls
        below this value.  These absolute tests catch *fast* drift.
    gain_margin:
        Trigger when the window's own hot set would serve this much more
        of the window's accesses than the current membership does
        (``candidate_coverage - coverage > gain_margin``).  This relative
        test catches *slow* drift in the ample-capacity regime, where
        coverage never falls below the absolute threshold yet a rebuild
        would still measurably raise the hit ratio.
    ewma_alpha:
        Smoothing of the coverage EWMA (higher = more reactive).
    """

    def __init__(
        self,
        threshold: float = 0.65,
        gain_margin: float = 0.02,
        ewma_alpha: float = 0.5,
    ) -> None:
        check_fraction("threshold", threshold)
        check_fraction("gain_margin", gain_margin)
        check_fraction("ewma_alpha", ewma_alpha)
        self.threshold = threshold
        self.gain_margin = gain_margin
        self.ewma_alpha = ewma_alpha
        self.coverage_ewma = 1.0
        self.signals: list[DriftSignal] = []

    def observe(
        self,
        window_hot: HotSet,
        cached_entities: np.ndarray,
        cached_relations: np.ndarray,
        coverage: float,
        candidate_coverage: float = 0.0,
    ) -> DriftSignal:
        """Measure one window against the current cache membership."""
        j_ent = _jaccard(np.asarray(window_hot.entities), cached_entities)
        j_rel = _jaccard(np.asarray(window_hot.relations), cached_relations)
        n_ent = len(window_hot.entities) + len(cached_entities)
        n_rel = len(window_hot.relations) + len(cached_relations)
        total = n_ent + n_rel
        jaccard = (
            (j_ent * n_ent + j_rel * n_rel) / total if total else 1.0
        )
        self.coverage_ewma = (
            (1.0 - self.ewma_alpha) * self.coverage_ewma
            + self.ewma_alpha * coverage
        )
        triggered = (
            jaccard < self.threshold
            or self.coverage_ewma < self.threshold
            or candidate_coverage - coverage > self.gain_margin
        )
        signal = DriftSignal(
            jaccard=jaccard,
            coverage=coverage,
            coverage_ewma=self.coverage_ewma,
            candidate_coverage=candidate_coverage,
            triggered=triggered,
        )
        self.signals.append(signal)
        return signal


class AdaptiveStale(HotEmbeddingStrategy):
    """ADAPTIVE: drift-triggered DPS with decayed hotness accumulation.

    Parameters
    ----------
    capacity, entity_ratio:
        As in the other strategies; ``entity_ratio`` here is only the
        *initial* split — triggers re-tune it toward the observed access
        mix (unless it is ``None``, the heterogeneity-ignorant ablation).
    window:
        Budget window ``D`` in iterations (same knob as DPS).  ADAPTIVE
        *observes* at half that granularity — finer-grained drift
        measurements and faster reaction when a trigger fires — but
        rebuilds only on triggers, so under a stationary workload it does
        strictly less install work than DPS while reacting in at most
        ``D/2`` iterations when the workload moves.
    threshold:
        Drift-trigger threshold (see :class:`DriftDetector`).
    decay:
        Per-window decay of the accumulated hotness counts
        (0 = only the latest window, i.e. DPS-grade estimates;
        1 = never forget, i.e. CPS-grade estimates).
    """

    def __init__(
        self,
        capacity: int,
        window: int = 32,
        entity_ratio: float | None = 0.25,
        threshold: float = 0.65,
        decay: float = 0.5,
    ) -> None:
        super().__init__(capacity, entity_ratio)
        check_positive("window", window)
        check_fraction("decay", decay)
        self.window = max(1, window // 2)
        self.decay = decay
        self.detector = DriftDetector(threshold)
        self.rebuilds = 0
        self.windows_observed = 0
        self._sampler: EpochSampler | None = None
        self._queue: list[MiniBatch] = []
        self._next_hot: HotSet | None = None
        self._entity_acc: dict[int, float] = {}
        self._relation_acc: dict[int, float] = {}
        self._cached_entities = np.empty(0, dtype=np.int64)
        self._cached_relations = np.empty(0, dtype=np.int64)

    # -------------------------------------------------------------- internals

    @staticmethod
    def _coverage(
        result: PrefetchResult,
        entities: np.ndarray,
        relations: np.ndarray,
    ) -> float:
        """Fraction of the window's accesses a membership would serve."""
        total = result.total_entity_accesses + result.total_relation_accesses
        if total == 0:
            return 1.0
        served = 0
        for cached, counts in (
            (entities, result.entity_counts),
            (relations, result.relation_counts),
        ):
            if len(cached) == 0 or not counts:
                continue
            ids = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
            vals = np.fromiter(counts.values(), dtype=np.int64, count=len(counts))
            served += int(vals[np.isin(ids, cached)].sum())
        return served / total

    def _tuned_ratio(self) -> float | None:
        """Entity-slot fraction re-tuned toward the observed hot mix.

        Ranks the decayed entity and relation counts *jointly* and takes
        the entity share of the merged top-``capacity``; the new ratio is
        the midpoint between the current one and that share, clipped away
        from degenerate splits.
        """
        if self.entity_ratio is None:
            return None
        merged = _top_ids_float(
            {
                **{2 * k: v for k, v in self._relation_acc.items()},
                **{2 * k + 1: v for k, v in self._entity_acc.items()},
            },
            self.capacity,
        )
        if len(merged) == 0:
            return self.entity_ratio
        share = float((merged % 2 == 1).mean())
        tuned = 0.5 * self.entity_ratio + 0.5 * share
        return float(np.clip(tuned, 0.05, 0.75))

    def _build_hot(self, result: PrefetchResult) -> HotSet:
        """Filter the *current* window's counts under the tuned ratio.

        The window counts describe exactly the batches about to be
        trained on (Algorithm 1's ground truth), so they — not the
        decayed history — decide membership.  The history steers the
        entity/relation split via :meth:`_tuned_ratio` and *tops up*
        slots the window could not fill: a half-size window may name
        fewer distinct ids than the cache holds, and leaving those slots
        empty would waste capacity DPS's full window uses.
        """
        ratio = self._tuned_ratio()
        if ratio is not None:
            self.entity_ratio = ratio
        hot = filter_hot_ids(
            result.entity_counts,
            result.relation_counts,
            self.capacity,
            self.entity_ratio,
        )
        spare = self.capacity - hot.size
        if spare <= 0:
            return hot
        chosen_ent = set(hot.entities.tolist())
        chosen_rel = set(hot.relations.tolist())
        leftover = {
            2 * k: v for k, v in self._relation_acc.items() if k not in chosen_rel
        }
        leftover.update(
            (2 * k + 1, v)
            for k, v in self._entity_acc.items()
            if k not in chosen_ent
        )
        extra = _top_ids_float(leftover, spare)
        if len(extra) == 0:
            return hot
        return HotSet(
            entities=np.concatenate([hot.entities, extra[extra % 2 == 1] // 2]),
            relations=np.concatenate([hot.relations, extra[extra % 2 == 0] // 2]),
        )

    def _refill(self, force_rebuild: bool) -> None:
        assert self._sampler is not None
        result = prefetch(self._sampler, self.window)
        self._queue = list(result.batches)
        self._pending_overhead += (
            result.total_entity_accesses + result.total_relation_accesses
        )
        self.windows_observed += 1
        _decay_into(self._entity_acc, result.entity_counts, self.decay)
        _decay_into(self._relation_acc, result.relation_counts, self.decay)
        window_hot = self._build_hot(result)
        if force_rebuild:
            triggered = True
        else:
            signal = self.detector.observe(
                window_hot,
                self._cached_entities,
                self._cached_relations,
                self._coverage(
                    result, self._cached_entities, self._cached_relations
                ),
                candidate_coverage=self._coverage(
                    result,
                    np.asarray(window_hot.entities),
                    np.asarray(window_hot.relations),
                ),
            )
            triggered = signal.triggered
        if triggered:
            self.rebuilds += 1
            # Charge the new membership to the inherited capacity ledger:
            # the spare-slot top-up in _build_hot must never push the hot
            # set past capacity, and this is where that would surface.
            self._ledger.reinstall(window_hot.size)
            self._next_hot = window_hot
            self._cached_entities = np.sort(np.asarray(window_hot.entities))
            self._cached_relations = np.sort(np.asarray(window_hot.relations))
        else:
            self._next_hot = None

    # ------------------------------------------------------------- public API

    def setup(self, sampler: EpochSampler) -> HotSet:
        self._sampler = sampler
        self._refill(force_rebuild=True)
        hot = self._next_hot
        self._next_hot = None
        assert hot is not None
        return hot

    def next_batch(self) -> tuple[MiniBatch, HotSet | None]:
        if self._sampler is None:
            raise RuntimeError("setup() must be called before next_batch()")
        if not self._queue:
            self._refill(force_rebuild=False)
        hot = self._next_hot
        self._next_hot = None
        return self._queue.pop(0), hot

    def drop_ids(self, entities: np.ndarray, relations: np.ndarray) -> None:
        """Keep the membership record honest after external invalidation.

        The :class:`~repro.stream.ingest.OnlineTrainer` evicts cache rows
        touched by deletions; removing them from the strategy's view makes
        the next window's Jaccard/coverage reflect the true membership.
        """
        if len(entities):
            self._cached_entities = np.setdiff1d(
                self._cached_entities, np.asarray(entities, dtype=np.int64)
            )
        if len(relations):
            self._cached_relations = np.setdiff1d(
                self._cached_relations, np.asarray(relations, dtype=np.int64)
            )
