"""Prequential (test-then-train) link-prediction over a sliding holdout.

Static evaluation scores a model on a frozen test split — meaningless for a
stream whose distribution drifts away from any fixed split.  Prequential
evaluation scores each incoming batch of triples *before* the model trains
on them (so every measurement is honestly out-of-sample), then folds them
into a sliding holdout window; periodic evaluations rank the window
against the current global tables.  MRR is therefore always measured on
the distribution the stream is *currently* serving.

Caveats (also in ``docs/streaming.md``): prequential MRR is not comparable
to static test MRR — the holdout is small, recent, and was never held out
of training for long; treat it as a trend signal, not an absolute score.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import evaluate_link_prediction
from repro.kg.graph import KnowledgeGraph
from repro.models.base import KGEModel
from repro.utils.validation import check_positive


@dataclass
class PrequentialPoint:
    """One evaluation of the sliding holdout."""

    step: int
    mrr: float
    hits10: float
    window_size: int


@dataclass
class PrequentialResult:
    """The full prequential trajectory of one online run."""

    points: list[PrequentialPoint] = field(default_factory=list)

    @property
    def final_mrr(self) -> float:
        return self.points[-1].mrr if self.points else 0.0

    @property
    def mean_mrr(self) -> float:
        if not self.points:
            return 0.0
        return float(np.mean([p.mrr for p in self.points]))

    def as_series(self) -> tuple[list[int], list[float]]:
        """(steps, mrr) columns for plotting/reporting."""
        return [p.step for p in self.points], [p.mrr for p in self.points]


class PrequentialEvaluator:
    """Sliding-holdout prequential evaluator.

    Parameters
    ----------
    model:
        The trainer's score function.
    window:
        Holdout size in triples (oldest are evicted first).
    num_candidates / max_queries:
        Sampled-ranking budget per evaluation (kept small — this runs
        many times along a stream).
    seed:
        Evaluation RNG seed.  The evaluator draws from its *own* RNG, so
        evaluating never perturbs training randomness (the same contract
        static evaluation honours).
    """

    def __init__(
        self,
        model: KGEModel,
        window: int = 256,
        num_candidates: int | None = 100,
        max_queries: int = 50,
        seed: int = 0,
    ) -> None:
        check_positive("window", window)
        check_positive("max_queries", max_queries)
        self.model = model
        self.window = window
        self.num_candidates = num_candidates
        self.max_queries = max_queries
        self.seed = seed
        self._holdout: deque[tuple[int, int, int]] = deque(maxlen=window)
        self._evals = 0
        self.result = PrequentialResult()

    # ----------------------------------------------------------------- intake

    def observe(self, triples: np.ndarray) -> None:
        """Fold incoming stream triples into the sliding holdout.

        Call this *before* training on them (test-then-train): the next
        :meth:`evaluate` then scores triples the model has seen for at
        most one window's worth of updates.
        """
        for h, r, t in np.asarray(triples, dtype=np.int64).reshape(-1, 3):
            self._holdout.append((int(h), int(r), int(t)))

    @property
    def holdout_size(self) -> int:
        return len(self._holdout)

    # ------------------------------------------------------------------ score

    def evaluate(
        self,
        step: int,
        entity_table: np.ndarray,
        relation_table: np.ndarray,
        num_relations: int,
    ) -> PrequentialPoint | None:
        """Rank the current holdout against the given global tables."""
        if not self._holdout:
            return None
        triples = np.asarray(list(self._holdout), dtype=np.int64)
        graph = KnowledgeGraph(
            triples,
            num_entities=len(entity_table),
            num_relations=num_relations,
        )
        self._evals += 1
        res = evaluate_link_prediction(
            self.model,
            entity_table,
            relation_table,
            graph,
            max_queries=self.max_queries,
            num_candidates=self.num_candidates,
            seed=self.seed + self._evals,
        )
        point = PrequentialPoint(
            step=step,
            mrr=res.mrr,
            hits10=res.hits.get(10, 0.0),
            window_size=len(triples),
        )
        self.result.points.append(point)
        return point
