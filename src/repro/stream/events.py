"""Deterministic event streams of timestamped knowledge-graph updates.

The streaming subsystem's workload generator: a seeded sequence of
:class:`GraphUpdate` records (triple inserts, triple deletes, vocabulary
growth) that an :class:`~repro.stream.ingest.OnlineTrainer` applies at
iteration boundaries.  Everything is derived from one
``numpy.random.Generator``, so the same ``(graph, profile, seed)`` triple
always produces a byte-identical stream — the substrate of the
drift-determinism tests.

Drift profiles
--------------
``none``
    Empty stream; online training degenerates to static training (and the
    determinism tests assert it does so *bit-for-bit*).
``rotation``
    Hot-set rotation / churn: inserts concentrate on a rotating subset of
    entities (and a rotating relation preference), while earlier hot
    triples are deleted.  Periodically mints brand-new entities that join
    the hot set — the cold-start churn a constant hot set (CPS) can never
    cache.
``zipf-shift``
    The Zipf exponent of the insert distribution glides from ``start`` to
    ``end`` over the stream: gradual, global drift.
``burst``
    Mostly-quiet stream with occasional large insert bursts over a freshly
    re-drawn hot set — abrupt drift.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.utils.rng import make_rng
from repro.utils.validation import check_fraction, check_positive

_EMPTY_TRIPLES = np.empty((0, 3), dtype=np.int64)


@dataclass(frozen=True)
class GraphUpdate:
    """One timestamped batch of graph mutations.

    Attributes
    ----------
    step:
        Global training iteration *before* which the update applies (the
        ingest loop applies every update with ``step <= current``).
    inserts:
        ``(n, 3)`` triples to append.  May reference ids beyond the
        pre-update vocabulary — ``num_entities``/``num_relations`` state
        the post-update sizes.
    deletes:
        ``(m, 3)`` triples to remove by value (absent triples are ignored,
        so generators may be optimistic about what is still present).
    num_entities, num_relations:
        Vocabulary sizes after this update (monotonically non-decreasing
        along a stream).
    """

    step: int
    inserts: np.ndarray
    deletes: np.ndarray
    num_entities: int
    num_relations: int

    @property
    def size(self) -> int:
        return len(self.inserts) + len(self.deletes)


@dataclass
class EventStream:
    """An ordered, seeded sequence of :class:`GraphUpdate` records."""

    updates: list[GraphUpdate] = field(default_factory=list)
    profile: str = "none"

    def __len__(self) -> int:
        return len(self.updates)

    def __iter__(self) -> Iterator[GraphUpdate]:
        return iter(self.updates)

    @property
    def total_inserts(self) -> int:
        return sum(len(u.inserts) for u in self.updates)

    @property
    def total_deletes(self) -> int:
        return sum(len(u.deletes) for u in self.updates)

    def fingerprint(self) -> str:
        """SHA-256 over every update's bytes (the determinism oracle)."""
        h = hashlib.sha256()
        for u in self.updates:
            h.update(
                f"{u.step}:{u.num_entities}:{u.num_relations}:".encode()
            )
            h.update(np.ascontiguousarray(u.inserts, dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(u.deletes, dtype=np.int64).tobytes())
        return h.hexdigest()


# --------------------------------------------------------------------- helpers


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Unnormalised Zipf weights ``rank^-exponent`` over ``n`` items."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-exponent)
    return w / w.sum()


def _draw_triples(
    rng: np.random.Generator,
    count: int,
    head_pool: np.ndarray,
    head_weights: np.ndarray | None,
    num_entities: int,
    rel_pool: np.ndarray,
    rel_weights: np.ndarray | None,
) -> np.ndarray:
    """``count`` triples with Zipf-weighted heads/relations, uniform tails."""
    heads = rng.choice(head_pool, size=count, p=head_weights)
    rels = rng.choice(rel_pool, size=count, p=rel_weights)
    tails = rng.integers(0, num_entities, size=count)
    return np.stack(
        [
            heads.astype(np.int64),
            rels.astype(np.int64),
            tails.astype(np.int64),
        ],
        axis=1,
    )


# ------------------------------------------------------------------ profiles


def no_drift(
    graph: KnowledgeGraph, steps: int, seed: int | np.random.Generator = 0
) -> EventStream:
    """The empty stream (static training)."""
    del graph, steps, seed
    return EventStream(updates=[], profile="none")


def hot_set_rotation(
    graph: KnowledgeGraph,
    steps: int,
    seed: int | np.random.Generator = 0,
    interval: int = 8,
    inserts_per_update: int = 64,
    delete_fraction: float = 0.5,
    hot_fraction: float = 0.1,
    rotate_fraction: float = 0.25,
    new_entities_every: int = 4,
    new_entities: int = 4,
    concentration: float = 1.2,
) -> EventStream:
    """Rotating hot set with churn and periodic vocabulary growth.

    Every ``interval`` steps, ``inserts_per_update`` new triples arrive
    whose heads are Zipf-concentrated on the *current* hot entity subset
    (``hot_fraction`` of the vocabulary).  The subset rotates by
    ``rotate_fraction`` of its size each update, earlier hot inserts are
    deleted at ``delete_fraction``, and every ``new_entities_every``-th
    update mints ``new_entities`` fresh entities that enter the hot set
    immediately.
    """
    check_positive("interval", interval)
    check_positive("inserts_per_update", inserts_per_update)
    check_fraction("delete_fraction", delete_fraction)
    check_fraction("hot_fraction", hot_fraction)
    check_fraction("rotate_fraction", rotate_fraction)
    rng = make_rng(seed)
    num_entities = graph.num_entities
    num_relations = graph.num_relations
    perm = rng.permutation(num_entities)
    rel_perm = rng.permutation(num_relations)
    hot_size = max(4, int(round(num_entities * hot_fraction)))
    rotate_by = max(1, int(round(hot_size * rotate_fraction)))
    offset = 0
    live_pool: list[np.ndarray] = []  # earlier hot inserts, delete candidates
    updates: list[GraphUpdate] = []
    for u, step in enumerate(range(interval, steps + 1, interval)):
        if new_entities_every and (u + 1) % new_entities_every == 0:
            fresh = np.arange(
                num_entities, num_entities + new_entities, dtype=np.int64
            )
            num_entities += new_entities
            perm = np.concatenate([fresh, perm])  # new ids become hottest
        hot = np.take(perm, (offset + np.arange(hot_size)) % len(perm))
        offset = (offset + rotate_by) % len(perm)
        hot_rels = np.take(
            rel_perm,
            (u + np.arange(max(1, len(rel_perm) // 2))) % len(rel_perm),
        )
        inserts = _draw_triples(
            rng,
            inserts_per_update,
            hot,
            _zipf_weights(len(hot), concentration),
            num_entities,
            hot_rels,
            _zipf_weights(len(hot_rels), concentration),
        )
        deletes = _EMPTY_TRIPLES
        if live_pool and delete_fraction > 0:
            stale = live_pool.pop(0)
            k = int(round(len(stale) * delete_fraction))
            if k:
                pick = rng.choice(len(stale), size=k, replace=False)
                deletes = stale[np.sort(pick)]
        live_pool.append(inserts)
        updates.append(
            GraphUpdate(
                step=step,
                inserts=inserts,
                deletes=deletes,
                num_entities=num_entities,
                num_relations=num_relations,
            )
        )
    return EventStream(updates=updates, profile="rotation")


def zipf_shift(
    graph: KnowledgeGraph,
    steps: int,
    seed: int | np.random.Generator = 0,
    interval: int = 8,
    inserts_per_update: int = 64,
    start: float = 1.5,
    end: float = 0.3,
) -> EventStream:
    """Gradual drift: the insert head distribution's Zipf exponent glides
    from ``start`` (peaked) to ``end`` (nearly uniform) over the stream."""
    check_positive("interval", interval)
    check_positive("inserts_per_update", inserts_per_update)
    rng = make_rng(seed)
    perm = rng.permutation(graph.num_entities)
    rel_pool = np.arange(graph.num_relations, dtype=np.int64)
    steps_list = list(range(interval, steps + 1, interval))
    updates: list[GraphUpdate] = []
    for u, step in enumerate(steps_list):
        frac = u / max(1, len(steps_list) - 1)
        exponent = start + (end - start) * frac
        inserts = _draw_triples(
            rng,
            inserts_per_update,
            perm,
            _zipf_weights(len(perm), exponent),
            graph.num_entities,
            rel_pool,
            None,
        )
        updates.append(
            GraphUpdate(
                step=step,
                inserts=inserts,
                deletes=_EMPTY_TRIPLES,
                num_entities=graph.num_entities,
                num_relations=graph.num_relations,
            )
        )
    return EventStream(updates=updates, profile="zipf-shift")


def burst(
    graph: KnowledgeGraph,
    steps: int,
    seed: int | np.random.Generator = 0,
    interval: int = 8,
    inserts_per_update: int = 128,
    quiet_fraction: float = 0.125,
    burst_probability: float = 0.2,
    concentration: float = 1.5,
) -> EventStream:
    """Bursty arrival: small trickle punctuated by concentrated bursts,
    each burst over a freshly re-drawn hot subset (abrupt drift).

    ``inserts_per_update`` (the shared knob of all drifting profiles) is
    the *burst* size; quiet updates trickle in ``quiet_fraction`` of it.
    """
    check_positive("interval", interval)
    check_positive("inserts_per_update", inserts_per_update)
    check_fraction("quiet_fraction", quiet_fraction)
    check_fraction("burst_probability", burst_probability)
    quiet_inserts = max(1, int(round(inserts_per_update * quiet_fraction)))
    burst_inserts = inserts_per_update
    rng = make_rng(seed)
    rel_pool = np.arange(graph.num_relations, dtype=np.int64)
    all_entities = np.arange(graph.num_entities, dtype=np.int64)
    updates: list[GraphUpdate] = []
    for step in range(interval, steps + 1, interval):
        bursting = rng.random() < burst_probability
        if bursting:
            hot = rng.permutation(graph.num_entities)[
                : max(4, graph.num_entities // 10)
            ]
            inserts = _draw_triples(
                rng,
                burst_inserts,
                hot,
                _zipf_weights(len(hot), concentration),
                graph.num_entities,
                rel_pool,
                None,
            )
        else:
            inserts = _draw_triples(
                rng,
                quiet_inserts,
                all_entities,
                None,
                graph.num_entities,
                rel_pool,
                None,
            )
        updates.append(
            GraphUpdate(
                step=step,
                inserts=inserts,
                deletes=_EMPTY_TRIPLES,
                num_entities=graph.num_entities,
                num_relations=graph.num_relations,
            )
        )
    return EventStream(updates=updates, profile="burst")


#: profile name -> generator.  Every generator takes ``(graph, steps,
#: seed, **knobs)`` and returns an :class:`EventStream`.
DRIFT_PROFILES: dict[str, Callable[..., EventStream]] = {
    "none": no_drift,
    "rotation": hot_set_rotation,
    "zipf-shift": zipf_shift,
    "burst": burst,
}


def make_stream(
    profile: str,
    graph: KnowledgeGraph,
    steps: int,
    seed: int | np.random.Generator = 0,
    **knobs,
) -> EventStream:
    """Build the event stream for ``profile`` (see :data:`DRIFT_PROFILES`)."""
    try:
        generator = DRIFT_PROFILES[profile]
    except KeyError:
        raise KeyError(
            f"unknown drift profile {profile!r}; expected one of "
            f"{sorted(DRIFT_PROFILES)}"
        ) from None
    return generator(graph, steps, seed, **knobs)
