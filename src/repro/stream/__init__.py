"""Streaming KGE subsystem: online graph updates and drift-adaptive caching.

Public surface:

* :mod:`repro.stream.events` — seeded event streams + drift profiles.
* :mod:`repro.stream.ingest` — :class:`OnlineTrainer` (test-then-train).
* :mod:`repro.stream.drift` — :class:`DriftDetector` and the ADAPTIVE
  cache strategy (:class:`AdaptiveStale`).
* :mod:`repro.stream.eval` — prequential link-prediction evaluation.
"""

from repro.stream.drift import AdaptiveStale, DriftDetector
from repro.stream.eval import PrequentialEvaluator, PrequentialResult
from repro.stream.events import (
    DRIFT_PROFILES,
    EventStream,
    GraphUpdate,
    make_stream,
)
from repro.stream.ingest import OnlineTrainer, OnlineTrainResult

__all__ = [
    "AdaptiveStale",
    "DriftDetector",
    "DRIFT_PROFILES",
    "EventStream",
    "GraphUpdate",
    "make_stream",
    "OnlineTrainer",
    "OnlineTrainResult",
    "PrequentialEvaluator",
    "PrequentialResult",
]
