"""Online training: interleave graph ingestion with training steps.

:class:`OnlineTrainer` wraps any parameter-server trainer
(:class:`~repro.core.trainer.HETKGTrainer` and its DGL-KE subclass) and
drives the same round-robin ``worker.step()`` loop as the static
``train()``, applying the due :class:`~repro.stream.events.GraphUpdate`
records at iteration boundaries.  Each applied update

* grows the PS shards (and, lazily, the server optimizer's accumulators)
  for new entity/relation ids, cold-started through the model's own init
  scheme from a dedicated ingest RNG;
* routes inserted triples to the machine owning their head entity and
  splices them into each worker's epoch walk
  (:meth:`~repro.sampling.minibatch.EpochSampler.apply_update`) without
  consuming training randomness;
* evicts cache rows whose ids were touched by deletions
  (:meth:`~repro.cache.sync.HotEmbeddingCache.invalidate_ids`);
* charges the delivery and cold-start traffic through the trainer's
  :class:`~repro.ps.network.NetworkModel` and advances the receiving
  machines' clocks under the ``"ingest"`` category, with obs spans to
  match;
* feeds the inserts to the prequential evaluator *before* they are
  trained on (test-then-train).

The empty-stream invariant: with ``drift="none"`` no ingest code path
runs, no extra RNG is drawn, and the step sequence equals the static
trainer's — the run is bit-identical (asserted by the golden tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.trainer import HETKGTrainer
from repro.kg.graph import HEAD, REL, TAIL, KnowledgeGraph, TripleIndex
from repro.ps.network import BYTES_PER_ELEMENT, CommRecord
from repro.sampling.cache import CachedNegativeSampler
from repro.stream.drift import AdaptiveStale
from repro.stream.eval import PrequentialEvaluator, PrequentialResult
from repro.stream.events import EventStream, GraphUpdate
from repro.utils.rng import derive_stream

#: Wire size of one (h, r, t) triple record in an ingestion message.
TRIPLE_RECORD_BYTES = 24  # 3 x int64

#: Salt for the ingestion side-stream: cold-start embedding rows must not
#: consume draws from (or shift) the training streams.
INGEST_STREAM_SALT = 104729


@dataclass
class OnlineTrainResult:
    """Everything one online run produced."""

    system: str
    steps: int
    sim_time: float
    compute_time: float
    communication_time: float
    ingest_time: float
    comm_totals: CommRecord
    cache_hit_ratio: float
    mean_loss: float
    prequential: PrequentialResult
    updates_applied: int = 0
    triples_inserted: int = 0
    triples_deleted: int = 0
    entities_added: int = 0
    relations_added: int = 0
    cache_rows_invalidated: int = 0
    #: Hard-negative cache keys dropped because their anchor entity or
    #: relation lost graph structure to deletions (0 with neg_cache=off).
    neg_cache_keys_invalidated: int = 0
    #: Merged hard-negative cache counters + refresh traffic across
    #: workers (empty dict with neg_cache=off) — same shape as
    #: :attr:`repro.core.trainer.TrainResult.neg_cache_stats`.
    neg_cache_stats: dict = field(default_factory=dict)
    adaptive_rebuilds: int = 0
    extra: dict[str, float] = field(default_factory=dict)


class OnlineTrainer:
    """Test-then-train loop over a trainer and an event stream.

    Parameters
    ----------
    trainer:
        A (not yet set up) PS-based trainer; its config decides the cache
        strategy, so the same ``OnlineTrainer`` serves DGL-KE, CPS, DPS
        and ADAPTIVE runs.
    stream:
        The seeded update sequence (``EventStream(updates=[])`` for static
        behaviour).
    eval_every:
        Evaluate the prequential holdout every this many steps (``None``
        = once at the end, if the stream delivered any triples).
    eval_window / eval_candidates / eval_queries:
        Sliding-holdout evaluator budget (see
        :class:`~repro.stream.eval.PrequentialEvaluator`).
    """

    def __init__(
        self,
        trainer: HETKGTrainer,
        stream: EventStream,
        eval_every: int | None = None,
        eval_window: int = 256,
        eval_candidates: int | None = 100,
        eval_queries: int = 50,
    ) -> None:
        self.trainer = trainer
        self.stream = stream
        self.eval_every = eval_every
        self.graph: KnowledgeGraph | None = None
        self._cursor = 0
        self._ingest_rng = derive_stream(trainer.config.seed, INGEST_STREAM_SALT)
        self.evaluator = PrequentialEvaluator(
            trainer.model,
            window=eval_window,
            num_candidates=eval_candidates,
            max_queries=eval_queries,
            seed=trainer.config.seed + 13,
        )
        # Counters
        self.updates_applied = 0
        self.triples_inserted = 0
        self.triples_deleted = 0
        self.entities_added = 0
        self.relations_added = 0
        self.cache_rows_invalidated = 0
        self.neg_cache_keys_invalidated = 0

    # -------------------------------------------------------------- ingestion

    def _grow_vocab(self, update: GraphUpdate) -> CommRecord:
        """Append embedding rows for new ids; returns the cold-start bytes
        per owning machine folded into one record (caller charges it)."""
        trainer = self.trainer
        assert trainer.server is not None and self.graph is not None
        store = trainer.server.store
        comm = CommRecord()
        n_new_ent = update.num_entities - self.graph.num_entities
        n_new_rel = update.num_relations - self.graph.num_relations
        byte_scale = trainer.config.byte_scale
        if n_new_ent > 0:
            rows = trainer.model.init_entities(n_new_ent, self._ingest_rng)
            store.grow("entity", rows)
            comm.remote_bytes += int(
                round(rows.size * BYTES_PER_ELEMENT * byte_scale)
            )
            self.entities_added += n_new_ent
        if n_new_rel > 0:
            rows = trainer.model.init_relations(n_new_rel, self._ingest_rng)
            store.grow("relation", rows)
            comm.remote_bytes += int(
                round(rows.size * BYTES_PER_ELEMENT * byte_scale)
            )
            self.relations_added += n_new_rel
        if comm.remote_bytes:
            comm.remote_messages = 1
        return comm

    def _apply_update(self, update: GraphUpdate) -> None:
        trainer = self.trainer
        assert trainer.server is not None and self.graph is not None
        store = trainer.server.store

        # Test-then-train: the holdout sees the inserts before any worker
        # trains on them.
        if len(update.inserts):
            self.evaluator.observe(update.inserts)

        init_comm = self._grow_vocab(update)

        inserts = np.asarray(update.inserts, dtype=np.int64).reshape(-1, 3)
        deletes = np.asarray(update.deletes, dtype=np.int64).reshape(-1, 3)
        n_ent, n_rel = update.num_entities, update.num_relations
        drop_index = (
            TripleIndex(deletes, n_ent, n_rel) if len(deletes) else None
        )
        affected_entities = (
            np.unique(np.concatenate([deletes[:, HEAD], deletes[:, TAIL]]))
            if len(deletes)
            else np.empty(0, dtype=np.int64)
        )
        affected_relations = (
            np.unique(deletes[:, REL])
            if len(deletes)
            else np.empty(0, dtype=np.int64)
        )

        # Route inserts to the machine owning the head entity (the
        # co-located layout streaming writes follow too).
        by_machine = {w.machine: w for w in trainer.workers}
        machines = sorted(by_machine)
        if len(inserts):
            owners = store.owners("entity", inserts[:, HEAD])
            owners = np.where(
                np.isin(owners, machines),
                owners,
                np.asarray(machines, dtype=np.int64)[
                    owners % len(machines)
                ],
            )
        else:
            owners = np.empty(0, dtype=np.int64)

        deleted_total = 0
        for machine in machines:
            worker = by_machine[machine]
            local = worker.sampler.graph
            local_inserts = inserts[owners == machine] if len(inserts) else inserts
            if drop_index is not None and local.num_triples:
                t = local.triples
                keep = ~drop_index.contains_batch(
                    t[:, HEAD], t[:, REL], t[:, TAIL]
                )
            else:
                keep = np.ones(local.num_triples, dtype=bool)
            deleted_here = int((~keep).sum())
            deleted_total += deleted_here
            if (
                len(local_inserts) == 0
                and deleted_here == 0
                and n_ent == local.num_entities
                and n_rel == local.num_relations
            ):
                continue
            with worker.trace.span(
                "ingest.apply", "ingest",
                inserts=len(local_inserts), deletes=deleted_here,
            ):
                survivors = local.triples[keep]
                new_triples = (
                    np.concatenate([survivors, local_inserts])
                    if len(local_inserts)
                    else survivors
                )
                new_local = KnowledgeGraph(
                    new_triples, num_entities=n_ent, num_relations=n_rel
                )
                worker.sampler.apply_update(new_local, keep_mask=keep)
                # Stale cache rows: ids whose graph structure was deleted.
                if worker.cache is not None:
                    evicted = worker.cache.invalidate_ids(
                        "entity", affected_entities
                    )
                    evicted += worker.cache.invalidate_ids(
                        "relation", affected_relations
                    )
                    self.cache_rows_invalidated += evicted
                    if isinstance(worker.strategy, AdaptiveStale):
                        worker.strategy.drop_ids(
                            affected_entities, affected_relations
                        )
                # Hard negatives scored against deleted structure: drop the
                # affected keys (and purge deleted ids from survivors).
                neg_sampler = worker.sampler.negative_sampler
                if isinstance(neg_sampler, CachedNegativeSampler) and (
                    len(affected_entities) or len(affected_relations)
                ):
                    self.neg_cache_keys_invalidated += (
                        neg_sampler.invalidate_ids(
                            affected_entities, affected_relations
                        )
                    )
                # Delivery traffic: the update's triple records reach this
                # machine from outside the cluster.
                record_count = len(local_inserts) + deleted_here
                comm = CommRecord(
                    remote_bytes=record_count * TRIPLE_RECORD_BYTES,
                    remote_messages=1 if record_count else 0,
                )
                cost = trainer.network.charge(comm)
                worker.clock.advance(cost, "ingest")
            worker.trace.count("worker.ingests")

        # Cold-start rows land on their owning shards; charge the slowest
        # (first) machine's clock — one write fan-out per update.
        if init_comm.total_bytes and machines:
            worker = by_machine[machines[0]]
            cost = trainer.network.charge(init_comm)
            worker.clock.advance(cost, "ingest")

        # Refresh the false-negative filter against the post-update graph.
        self.graph = self.graph.mutated(
            inserts=inserts if len(inserts) else None,
            deletes=deletes if len(deletes) else None,
            num_entities=n_ent,
            num_relations=n_rel,
        )
        if trainer.config.filter_false_negatives:
            for worker in trainer.workers:
                worker.sampler.negative_sampler.resize(
                    n_ent, filter_graph=self.graph
                )

        self.updates_applied += 1
        self.triples_inserted += len(inserts)
        self.triples_deleted += deleted_total

    # ------------------------------------------------------------------ train

    def train(self, train_graph: KnowledgeGraph) -> OnlineTrainResult:
        """Run ``config.epochs`` x (initial batches-per-epoch) steps,
        applying stream updates as their timestamps come due.

        The step budget is fixed up front from the *initial* graph so the
        empty-stream run performs exactly the static trainer's step
        sequence; a growing graph trains more triples per epoch walk, not
        more steps.
        """
        trainer = self.trainer
        trainer.setup(train_graph)
        assert trainer.server is not None
        self.graph = train_graph
        cfg = trainer.config
        iterations = max(w.sampler.batches_per_epoch for w in trainer.workers)
        total_steps = cfg.epochs * iterations

        comm_base = trainer.network.totals.copy()
        clock_base = {
            w.machine: w.clock.copy() for w in trainer.workers
        }

        for worker in trainer.workers:
            worker.start()

        losses: list[float] = []
        for step in range(1, total_steps + 1):
            while (
                self._cursor < len(self.stream.updates)
                and self.stream.updates[self._cursor].step <= step
            ):
                self._apply_update(self.stream.updates[self._cursor])
                self._cursor += 1
            for worker in trainer.workers:
                losses.append(worker.step())
            if (
                self.eval_every is not None
                and step % self.eval_every == 0
                and self.evaluator.holdout_size
            ):
                self._evaluate(step)
        if self.eval_every is None and self.evaluator.holdout_size:
            self._evaluate(total_steps)

        workers = trainer.workers
        elapsed = {
            w.machine: w.clock.elapsed - clock_base[w.machine].elapsed
            for w in workers
        }
        slowest = max(workers, key=lambda w: elapsed[w.machine])
        base = clock_base[slowest.machine]
        hit_ratios = [w.cache_hit_ratio() for w in workers]
        rebuilds = sum(
            w.strategy.rebuilds
            for w in workers
            if isinstance(w.strategy, AdaptiveStale)
        )
        neg_cache_stats: dict = {}
        if any(w.neg_cache is not None for w in workers):
            refresh_comm = CommRecord()
            for w in workers:
                if w.neg_cache is None:
                    continue
                for name, value in w.neg_cache.counters().items():
                    neg_cache_stats[name] = neg_cache_stats.get(name, 0) + value
                neg_cache_stats["cache_keys"] = (
                    neg_cache_stats.get("cache_keys", 0) + w.neg_cache.num_keys
                )
                refresh_comm.merge(w.neg_cache_comm)
            neg_cache_stats["refresh_bytes"] = refresh_comm.total_bytes
            neg_cache_stats["refresh_remote_bytes"] = refresh_comm.remote_bytes
            neg_cache_stats["refresh_messages"] = refresh_comm.total_messages
            neg_cache_stats["neg_cache_time"] = slowest.clock.category(
                "neg_cache"
            ) - base.category("neg_cache")
        return OnlineTrainResult(
            system=trainer.system_name,
            steps=total_steps,
            sim_time=elapsed[slowest.machine],
            compute_time=slowest.clock.category("compute")
            - base.category("compute"),
            communication_time=slowest.clock.category("communication")
            - base.category("communication"),
            ingest_time=slowest.clock.category("ingest")
            - base.category("ingest"),
            comm_totals=trainer.network.totals.difference(comm_base),
            cache_hit_ratio=float(np.mean(hit_ratios)) if hit_ratios else 0.0,
            mean_loss=float(np.mean(losses)) if losses else 0.0,
            prequential=self.evaluator.result,
            updates_applied=self.updates_applied,
            triples_inserted=self.triples_inserted,
            triples_deleted=self.triples_deleted,
            entities_added=self.entities_added,
            relations_added=self.relations_added,
            cache_rows_invalidated=self.cache_rows_invalidated,
            neg_cache_keys_invalidated=self.neg_cache_keys_invalidated,
            neg_cache_stats=neg_cache_stats,
            adaptive_rebuilds=rebuilds,
        )

    # ------------------------------------------------------------------ evals

    def _evaluate(self, step: int) -> None:
        assert self.trainer.server is not None and self.graph is not None
        store = self.trainer.server.store
        self.evaluator.evaluate(
            step,
            store.table("entity"),
            store.table("relation"),
            num_relations=self.graph.num_relations,
        )
