"""Train/validation/test splitting of a knowledge graph.

The paper uses the standard FB15k/WN18 splits and a 90/5/5 split for
Freebase-86m.  We split by shuffling triples; the training split keeps the
full entity/relation vocabularies so embeddings exist for every id that can
appear at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.utils.rng import make_rng
from repro.utils.validation import check_fraction


@dataclass
class Split:
    """The three evaluation subsets of one knowledge graph."""

    train: KnowledgeGraph
    valid: KnowledgeGraph
    test: KnowledgeGraph

    def all_triples(self) -> set[tuple[int, int, int]]:
        """Union of all three subsets' triples (used for filtered ranking)."""
        return (
            self.train.triple_set()
            | self.valid.triple_set()
            | self.test.triple_set()
        )


def split_triples(
    graph: KnowledgeGraph,
    train_fraction: float = 0.90,
    valid_fraction: float = 0.05,
    seed: int | np.random.Generator | None = None,
) -> Split:
    """Randomly split ``graph`` into train/valid/test subsets.

    The test fraction is the remainder ``1 - train - valid``.  All three
    subsets share the parent graph's vocabularies.
    """
    check_fraction("train_fraction", train_fraction)
    check_fraction("valid_fraction", valid_fraction)
    if train_fraction + valid_fraction > 1.0:
        raise ValueError(
            "train_fraction + valid_fraction must not exceed 1.0, got "
            f"{train_fraction} + {valid_fraction}"
        )
    rng = make_rng(seed)
    n = graph.num_triples
    order = rng.permutation(n)
    n_train = int(round(n * train_fraction))
    n_valid = int(round(n * valid_fraction))
    return Split(
        train=graph.subgraph(order[:n_train]),
        valid=graph.subgraph(order[n_train : n_train + n_valid]),
        test=graph.subgraph(order[n_train + n_valid :]),
    )
