"""Knowledge graph substrate: triple store, datasets, splits, statistics."""

from repro.kg.graph import KnowledgeGraph
from repro.kg.datasets import (
    DatasetSpec,
    FB15K_SPEC,
    WN18_SPEC,
    FREEBASE86M_SPEC,
    generate_dataset,
    load_tsv,
    save_tsv,
)
from repro.kg.splits import Split, split_triples
from repro.kg.stats import (
    access_frequencies,
    top_fraction_share,
    frequency_skew_report,
)
from repro.kg.analytics import (
    GraphSummary,
    summarize,
    powerlaw_alpha_mle,
    hot_set_coverage,
)
from repro.kg.transforms import (
    add_inverse_relations,
    deduplicate,
    k_core,
    relabel_by_degree,
    remove_self_loops,
    subsample_triples,
)

__all__ = [
    "KnowledgeGraph",
    "DatasetSpec",
    "FB15K_SPEC",
    "WN18_SPEC",
    "FREEBASE86M_SPEC",
    "generate_dataset",
    "load_tsv",
    "save_tsv",
    "Split",
    "split_triples",
    "access_frequencies",
    "top_fraction_share",
    "frequency_skew_report",
    "GraphSummary",
    "summarize",
    "powerlaw_alpha_mle",
    "hot_set_coverage",
    "add_inverse_relations",
    "deduplicate",
    "k_core",
    "relabel_by_degree",
    "remove_self_loops",
    "subsample_triples",
]
