"""Structural analytics for knowledge graphs.

Quantifies the properties the HET-KG design depends on: how heavy-tailed
the degree distribution is (power-law exponent via the discrete MLE of
Clauset et al.), how concentrated relation usage is, and a compact summary
used by dataset documentation and the generator's self-checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.stats import gini
from repro.utils.validation import check_positive


def powerlaw_alpha_mle(values: np.ndarray, x_min: int = 1) -> float:
    """Discrete power-law exponent by maximum likelihood.

    ``alpha = 1 + n / sum(ln(x_i / (x_min - 0.5)))`` over samples
    ``x_i >= x_min`` (Clauset, Shalizi & Newman 2009, Eq. 3.7).  Returns
    ``nan`` when fewer than two samples qualify.
    """
    check_positive("x_min", x_min)
    values = np.asarray(values, dtype=np.float64)
    tail = values[values >= x_min]
    if len(tail) < 2:
        return float("nan")
    return float(1.0 + len(tail) / np.log(tail / (x_min - 0.5)).sum())


def degree_histogram(graph: KnowledgeGraph) -> tuple[np.ndarray, np.ndarray]:
    """(degrees, counts): how many entities have each degree."""
    degrees = graph.entity_degrees()
    values, counts = np.unique(degrees, return_counts=True)
    return values, counts


@dataclass
class GraphSummary:
    """Compact structural profile of one knowledge graph."""

    num_entities: int
    num_relations: int
    num_triples: int
    mean_degree: float
    max_degree: int
    degree_alpha: float  # power-law exponent of the degree tail
    degree_gini: float
    relation_gini: float
    relation_top10_share: float  # triple share of the 10 busiest relations

    def as_row(self) -> list:
        return [
            self.num_entities,
            self.num_relations,
            self.num_triples,
            self.mean_degree,
            self.max_degree,
            self.degree_alpha,
            self.degree_gini,
            self.relation_gini,
            self.relation_top10_share,
        ]


def summarize(graph: KnowledgeGraph, alpha_x_min: int = 2) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    degrees = graph.entity_degrees()
    rel_counts = graph.relation_counts()
    top10 = np.sort(rel_counts)[::-1][:10].sum()
    return GraphSummary(
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        num_triples=graph.num_triples,
        mean_degree=float(degrees.mean()) if len(degrees) else 0.0,
        max_degree=int(degrees.max()) if len(degrees) else 0,
        degree_alpha=powerlaw_alpha_mle(degrees, x_min=alpha_x_min),
        degree_gini=gini(degrees),
        relation_gini=gini(rel_counts),
        relation_top10_share=float(top10 / rel_counts.sum())
        if rel_counts.sum()
        else 0.0,
    )


def hot_set_coverage(
    counts: np.ndarray, capacities: tuple[int, ...]
) -> list[tuple[int, float]]:
    """Access share covered by caching the top-``k`` ids, for several k.

    The analytic upper bound on any static cache's hit ratio — used to
    sanity-check measured hit ratios and to size caches before training.
    """
    counts = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    total = counts.sum()
    out = []
    for k in capacities:
        if k < 0:
            raise ValueError(f"capacities must be non-negative, got {k}")
        share = float(counts[:k].sum() / total) if total > 0 else 0.0
        out.append((k, share))
    return out
