"""Knowledge graph transformations.

Standard preprocessing steps a user applies before training: inverse
relations (the WN18/FB15k leakage mitigation literature's staple),
deduplication, self-loop removal, degree-ordered relabeling (which makes
hot ids contiguous — useful for cache-locality studies), subsampling, and
k-core pruning.  All transforms are pure: they return new graphs.
"""

from __future__ import annotations

import numpy as np

from repro.kg.graph import HEAD, REL, TAIL, KnowledgeGraph
from repro.utils.rng import make_rng
from repro.utils.validation import check_fraction, check_positive


def add_inverse_relations(graph: KnowledgeGraph) -> KnowledgeGraph:
    """Append an inverse triple ``(t, r + n_rel, h)`` for every triple.

    Doubles the relation vocabulary; inverse relation ``r + n_rel``
    corresponds to ``r`` read right-to-left.  Labels get a ``_inv``
    suffix when present.
    """
    fwd = graph.triples
    inv = np.stack(
        [fwd[:, TAIL], fwd[:, REL] + graph.num_relations, fwd[:, HEAD]], axis=1
    )
    labels = None
    if graph.relation_labels is not None:
        labels = graph.relation_labels + [
            f"{name}_inv" for name in graph.relation_labels
        ]
    return KnowledgeGraph(
        np.concatenate([fwd, inv]),
        num_entities=graph.num_entities,
        num_relations=2 * graph.num_relations,
        entity_labels=graph.entity_labels,
        relation_labels=labels,
    )


def remove_self_loops(graph: KnowledgeGraph) -> KnowledgeGraph:
    """Drop triples whose head equals their tail."""
    keep = graph.triples[:, HEAD] != graph.triples[:, TAIL]
    return graph.subgraph(np.nonzero(keep)[0])


def deduplicate(graph: KnowledgeGraph) -> KnowledgeGraph:
    """Keep the first occurrence of each distinct triple."""
    if not len(graph.triples):
        return graph
    _, first = np.unique(graph.triples, axis=0, return_index=True)
    return graph.subgraph(np.sort(first))


def relabel_by_degree(graph: KnowledgeGraph) -> tuple[KnowledgeGraph, np.ndarray]:
    """Renumber entities so id 0 is the highest-degree entity.

    Returns ``(relabeled_graph, old_to_new)``.  Useful for studying cache
    locality: after relabeling, "hot" means "small id".
    """
    order = np.argsort(-graph.entity_degrees(), kind="stable")
    old_to_new = np.empty(graph.num_entities, dtype=np.int64)
    old_to_new[order] = np.arange(graph.num_entities)
    triples = graph.triples.copy()
    triples[:, HEAD] = old_to_new[triples[:, HEAD]]
    triples[:, TAIL] = old_to_new[triples[:, TAIL]]
    labels = None
    if graph.entity_labels is not None:
        labels = [graph.entity_labels[int(i)] for i in order]
    return (
        KnowledgeGraph(
            triples,
            num_entities=graph.num_entities,
            num_relations=graph.num_relations,
            entity_labels=labels,
            relation_labels=graph.relation_labels,
        ),
        old_to_new,
    )


def subsample_triples(
    graph: KnowledgeGraph,
    fraction: float,
    seed: int | np.random.Generator | None = None,
) -> KnowledgeGraph:
    """Keep a uniform ``fraction`` of triples (vocabularies unchanged)."""
    check_fraction("fraction", fraction)
    rng = make_rng(seed)
    n_keep = int(round(graph.num_triples * fraction))
    idx = rng.choice(graph.num_triples, size=n_keep, replace=False)
    return graph.subgraph(np.sort(idx))


def k_core(graph: KnowledgeGraph, k: int) -> KnowledgeGraph:
    """Restrict to the k-core: iteratively drop entities with degree < k.

    Triples touching a dropped entity are removed; the process repeats
    until every remaining entity has degree >= k (possibly leaving an
    empty graph).  Vocabulary sizes are preserved so ids stay valid.
    """
    check_positive("k", k)
    triples = graph.triples
    while len(triples):
        degrees = np.zeros(graph.num_entities, dtype=np.int64)
        np.add.at(degrees, triples[:, HEAD], 1)
        np.add.at(degrees, triples[:, TAIL], 1)
        alive = degrees >= k
        keep = alive[triples[:, HEAD]] & alive[triples[:, TAIL]]
        if keep.all():
            break
        triples = triples[keep]
    return KnowledgeGraph(
        triples.copy(),
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        entity_labels=graph.entity_labels,
        relation_labels=graph.relation_labels,
    )
