"""Access-frequency statistics over knowledge graphs.

This is the paper's Fig. 2 micro-benchmark: count how often each entity and
relation embedding would be touched during an epoch of (positive + negative)
sampling, and show that the distribution is heavily skewed — the observation
that motivates the hot-embedding cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import HEAD, REL, TAIL, KnowledgeGraph


def access_frequencies(
    graph: KnowledgeGraph,
    negatives_per_positive: int = 0,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-id embedding access counts for one epoch over ``graph``.

    Every positive triple touches its head, tail, and relation embedding
    once each.  When ``negatives_per_positive > 0``, each positive
    additionally touches that many uniformly-corrupted entities (the
    relation is reused), matching the sampler in §V of the paper.

    Returns ``(entity_counts, relation_counts)``.
    """
    ent = np.zeros(graph.num_entities, dtype=np.int64)
    rel = np.zeros(graph.num_relations, dtype=np.int64)
    if len(graph.triples):
        np.add.at(ent, graph.triples[:, HEAD], 1)
        np.add.at(ent, graph.triples[:, TAIL], 1)
        np.add.at(rel, graph.triples[:, REL], 1)
        if negatives_per_positive > 0:
            if rng is None:
                raise ValueError("rng is required when sampling negatives")
            corrupted = rng.integers(
                0, graph.num_entities,
                size=len(graph.triples) * negatives_per_positive,
            )
            np.add.at(ent, corrupted, 1)
            # Negative triples reuse the positive's relation embedding.
            reps = np.repeat(graph.triples[:, REL], negatives_per_positive)
            np.add.at(rel, reps, 1)
    return ent, rel


def top_fraction_share(counts: np.ndarray, fraction: float) -> float:
    """Share of total accesses captured by the hottest ``fraction`` of ids.

    E.g. the paper reports that on FB15k the top 1% of relations account
    for ~36% of relation-embedding usage.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    total = counts.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round(len(counts) * fraction)))
    hottest = np.sort(counts)[::-1][:k]
    return float(hottest.sum() / total)


@dataclass
class SkewReport:
    """Summary of one dataset's access skew (rows of the Fig. 2 analysis)."""

    name: str
    entity_top1pct_share: float
    relation_top1pct_share: float
    entity_gini: float
    relation_gini: float

    def as_row(self) -> list:
        return [
            self.name,
            self.entity_top1pct_share,
            self.relation_top1pct_share,
            self.entity_gini,
            self.relation_gini,
        ]


def gini(counts: np.ndarray) -> float:
    """Gini coefficient of a count distribution (0 = uniform, →1 = skewed)."""
    counts = np.sort(np.asarray(counts, dtype=np.float64))
    n = len(counts)
    total = counts.sum()
    if n == 0 or total == 0:
        return 0.0
    cum = np.cumsum(counts)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / total) / n
    return float((n + 1 - 2 * cum.sum() / total) / n)


def frequency_skew_report(
    graph: KnowledgeGraph,
    name: str,
    negatives_per_positive: int = 0,
    rng: np.random.Generator | None = None,
) -> SkewReport:
    """Compute the Fig. 2-style skew summary for one dataset."""
    ent, rel = access_frequencies(graph, negatives_per_positive, rng)
    return SkewReport(
        name=name,
        entity_top1pct_share=top_fraction_share(ent, 0.01),
        relation_top1pct_share=top_fraction_share(rel, 0.01),
        entity_gini=gini(ent),
        relation_gini=gini(rel),
    )
