"""In-memory knowledge graph: a set of (head, relation, tail) triples.

The graph is stored as a single ``(n, 3)`` int64 array plus optional string
vocabularies.  All downstream components (samplers, partitioners, trainers)
work on integer ids; string labels exist only for I/O and display.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Sequence

import numpy as np

#: Column indices into the triple array.
HEAD, REL, TAIL = 0, 1, 2


class TripleIndex:
    """Vectorized membership index over a fixed triple set.

    Encodes every ``(h, r, t)`` as a single int64 key
    ``(h * num_relations + r) * num_entities + t`` held in a sorted array,
    so a batch of membership queries is one ``np.searchsorted`` probe
    instead of ``b * n`` Python set lookups.  When the vocabulary is large
    enough that the key space would overflow int64 (``E * R * E >= 2**63``)
    the index degrades to set-backed scalar checks — same answers, no
    speedup.
    """

    def __init__(
        self,
        triples: np.ndarray,
        num_entities: int,
        num_relations: int,
    ) -> None:
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        triples = np.asarray(triples, dtype=np.int64).reshape(-1, 3)
        # Overflow guard evaluated in Python ints (arbitrary precision).
        self._vectorized = (
            self.num_entities > 0
            and self.num_relations > 0
            and self.num_entities * self.num_relations * self.num_entities
            < 2**63
        )
        if self._vectorized:
            if len(triples):
                self._keys = np.unique(
                    self._encode(
                        triples[:, HEAD], triples[:, REL], triples[:, TAIL]
                    )
                )
            else:
                self._keys = np.empty(0, dtype=np.int64)
            self._set: set[tuple[int, int, int]] | None = None
        else:
            self._keys = None
            self._set = {(int(h), int(r), int(t)) for h, r, t in triples}

    def __len__(self) -> int:
        if self._vectorized:
            return len(self._keys)
        return len(self._set)

    def _encode(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        return (h * self.num_relations + r) * self.num_entities + t

    def contains_batch(
        self, heads: np.ndarray, rels: np.ndarray, tails: np.ndarray
    ) -> np.ndarray:
        """Boolean mask: which ``(heads[i], rels[i], tails[i])`` are indexed."""
        heads = np.asarray(heads, dtype=np.int64)
        rels = np.asarray(rels, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        if not self._vectorized:
            return np.fromiter(
                (
                    (int(h), int(r), int(t)) in self._set
                    for h, r, t in zip(heads, rels, tails)
                ),
                dtype=bool,
                count=len(heads),
            )
        if len(self._keys) == 0 or len(heads) == 0:
            return np.zeros(len(heads), dtype=bool)
        keys = self._encode(heads, rels, tails)
        pos = np.minimum(
            np.searchsorted(self._keys, keys), len(self._keys) - 1
        )
        return self._keys[pos] == keys

    def contains(self, h: int, r: int, t: int) -> bool:
        """Scalar membership check."""
        if not self._vectorized:
            return (int(h), int(r), int(t)) in self._set
        if len(self._keys) == 0:
            return False
        key = (int(h) * self.num_relations + int(r)) * self.num_entities + int(t)
        pos = int(np.searchsorted(self._keys, key))
        return pos < len(self._keys) and int(self._keys[pos]) == key


class KnowledgeGraph:
    """A knowledge graph ``G = {(h, r, t)}`` over integer entity/relation ids.

    Parameters
    ----------
    triples:
        ``(n, 3)`` integer array of ``(head, relation, tail)`` rows.
    num_entities, num_relations:
        Vocabulary sizes.  If omitted they are inferred as ``max id + 1``,
        which is wrong for graphs with isolated trailing entities — pass them
        explicitly when known.
    entity_labels, relation_labels:
        Optional human-readable names, index-aligned with ids.
    """

    def __init__(
        self,
        triples: np.ndarray | Sequence[tuple[int, int, int]],
        num_entities: int | None = None,
        num_relations: int | None = None,
        entity_labels: list[str] | None = None,
        relation_labels: list[str] | None = None,
    ) -> None:
        triples = np.asarray(triples, dtype=np.int64)
        if triples.size == 0:
            triples = triples.reshape(0, 3)
        if triples.ndim != 2 or triples.shape[1] != 3:
            raise ValueError(f"triples must have shape (n, 3), got {triples.shape}")
        if triples.size and triples.min() < 0:
            raise ValueError("triple ids must be non-negative")
        self.triples = triples

        max_ent = int(max(triples[:, HEAD].max(), triples[:, TAIL].max())) + 1 if len(triples) else 0
        max_rel = int(triples[:, REL].max()) + 1 if len(triples) else 0
        self.num_entities = max_ent if num_entities is None else int(num_entities)
        self.num_relations = max_rel if num_relations is None else int(num_relations)
        if self.num_entities < max_ent:
            raise ValueError(
                f"num_entities={self.num_entities} smaller than max entity id + 1 = {max_ent}"
            )
        if self.num_relations < max_rel:
            raise ValueError(
                f"num_relations={self.num_relations} smaller than max relation id + 1 = {max_rel}"
            )

        if entity_labels is not None and len(entity_labels) != self.num_entities:
            raise ValueError("entity_labels length must equal num_entities")
        if relation_labels is not None and len(relation_labels) != self.num_relations:
            raise ValueError("relation_labels length must equal num_relations")
        self.entity_labels = entity_labels
        self.relation_labels = relation_labels

        self._triple_set: set[tuple[int, int, int]] | None = None
        self._triple_index: TripleIndex | None = None
        self._degrees: np.ndarray | None = None
        self._rel_counts: np.ndarray | None = None
        self._adjacency: dict[int, list[int]] | None = None

    # ------------------------------------------------------------------ basic

    @property
    def num_triples(self) -> int:
        return len(self.triples)

    def __len__(self) -> int:
        return len(self.triples)

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        for h, r, t in self.triples:
            yield int(h), int(r), int(t)

    def __contains__(self, triple: tuple[int, int, int]) -> bool:
        return tuple(int(x) for x in triple) in self.triple_set()

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(entities={self.num_entities}, "
            f"relations={self.num_relations}, triples={self.num_triples})"
        )

    def triple_set(self) -> set[tuple[int, int, int]]:
        """Set view of the triples, built lazily (used for filtered ranking)."""
        if self._triple_set is None:
            self._triple_set = {
                (int(h), int(r), int(t)) for h, r, t in self.triples
            }
        return self._triple_set

    def triple_index(self) -> TripleIndex:
        """Vectorized membership index over the triples, built lazily.

        Used by the negative sampler to detect false-negative collisions for
        a whole batch of corruptions in one probe (see
        :class:`TripleIndex`); :meth:`triple_set` remains the scalar oracle.
        """
        if self._triple_index is None:
            self._triple_index = TripleIndex(
                self.triples, self.num_entities, self.num_relations
            )
        return self._triple_index

    # --------------------------------------------------------------- mutation

    def invalidate_caches(self) -> None:
        """Drop every lazily-built derived structure.

        The triple set/index, degree/count vectors, and adjacency are all
        memoised on first use; anything that mutates :attr:`triples` in
        place (or the instance's vocabulary sizes) **must** call this, or
        ``contains_batch``/``entity_degrees``/... keep answering for the
        pre-mutation graph.  :meth:`mutated` (the copy-on-extend path used
        by :mod:`repro.stream`) never needs it: a fresh instance starts
        with cold caches.
        """
        self._triple_set = None
        self._triple_index = None
        self._degrees = None
        self._rel_counts = None
        self._adjacency = None

    def mutated(
        self,
        inserts: np.ndarray | None = None,
        deletes: np.ndarray | None = None,
        num_entities: int | None = None,
        num_relations: int | None = None,
    ) -> "KnowledgeGraph":
        """Copy-on-extend: a new graph with ``deletes`` removed (by value,
        all occurrences) and ``inserts`` appended, over possibly larger
        vocabularies.

        This instance is untouched — its memoised caches stay valid — and
        the returned graph builds its own caches lazily, so a grown
        graph's :meth:`triple_index`/:meth:`entity_degrees` always see the
        new triples.  ``num_entities``/``num_relations`` default to this
        graph's sizes (they may only grow; ids never shrink mid-stream).

        Returns ``self`` unchanged when there is nothing to apply.
        """
        n_ent = self.num_entities if num_entities is None else int(num_entities)
        n_rel = self.num_relations if num_relations is None else int(num_relations)
        if n_ent < self.num_entities or n_rel < self.num_relations:
            raise ValueError(
                "mutated() cannot shrink vocabularies "
                f"({self.num_entities}->{n_ent} entities, "
                f"{self.num_relations}->{n_rel} relations)"
            )
        has_inserts = inserts is not None and len(inserts) > 0
        has_deletes = deletes is not None and len(deletes) > 0
        if not has_inserts and not has_deletes and (
            n_ent == self.num_entities and n_rel == self.num_relations
        ):
            return self
        triples = self.triples
        if has_deletes:
            deletes = np.asarray(deletes, dtype=np.int64).reshape(-1, 3)
            drop_index = TripleIndex(deletes, n_ent, n_rel)
            if len(triples):
                keep = ~drop_index.contains_batch(
                    triples[:, HEAD], triples[:, REL], triples[:, TAIL]
                )
                triples = triples[keep]
        if has_inserts:
            inserts = np.asarray(inserts, dtype=np.int64).reshape(-1, 3)
            triples = (
                np.concatenate([triples, inserts]) if len(triples) else inserts
            )
        # Labels cannot cover grown vocabularies; drop them on growth.
        grew = n_ent > self.num_entities or n_rel > self.num_relations
        return KnowledgeGraph(
            triples,
            num_entities=n_ent,
            num_relations=n_rel,
            entity_labels=None if grew else self.entity_labels,
            relation_labels=None if grew else self.relation_labels,
        )

    # -------------------------------------------------------------- structure

    def entity_degrees(self) -> np.ndarray:
        """Undirected degree of every entity (head + tail appearances).

        Memoised; a copy is returned so callers may mutate freely.
        """
        if self._degrees is None:
            degrees = np.zeros(self.num_entities, dtype=np.int64)
            if len(self.triples):
                np.add.at(degrees, self.triples[:, HEAD], 1)
                np.add.at(degrees, self.triples[:, TAIL], 1)
            self._degrees = degrees
        return self._degrees.copy()

    def relation_counts(self) -> np.ndarray:
        """Number of triples using each relation (memoised; returns a copy)."""
        if self._rel_counts is None:
            counts = np.zeros(self.num_relations, dtype=np.int64)
            if len(self.triples):
                np.add.at(counts, self.triples[:, REL], 1)
            self._rel_counts = counts
        return self._rel_counts.copy()

    def adjacency(self) -> dict[int, list[int]]:
        """Undirected entity adjacency list (used by the partitioner).

        Memoised; treat the returned dict as read-only.
        """
        if self._adjacency is None:
            adj: dict[int, list[int]] = defaultdict(list)
            for h, _, t in self.triples:
                h, t = int(h), int(t)
                if h != t:
                    adj[h].append(t)
                    adj[t].append(h)
            self._adjacency = adj
        return self._adjacency

    def subgraph(self, triple_indices: np.ndarray) -> "KnowledgeGraph":
        """A graph over the same vocabularies containing only the given rows."""
        return KnowledgeGraph(
            self.triples[np.asarray(triple_indices, dtype=np.int64)],
            num_entities=self.num_entities,
            num_relations=self.num_relations,
            entity_labels=self.entity_labels,
            relation_labels=self.relation_labels,
        )

    # ------------------------------------------------------------ construction

    @classmethod
    def from_labeled_triples(
        cls, labeled: Iterable[tuple[str, str, str]]
    ) -> "KnowledgeGraph":
        """Build a graph from string triples, assigning ids in first-seen order."""
        ent_ids: dict[str, int] = {}
        rel_ids: dict[str, int] = {}
        rows = []
        for h, r, t in labeled:
            hid = ent_ids.setdefault(h, len(ent_ids))
            rid = rel_ids.setdefault(r, len(rel_ids))
            tid = ent_ids.setdefault(t, len(ent_ids))
            rows.append((hid, rid, tid))
        return cls(
            np.asarray(rows, dtype=np.int64).reshape(-1, 3),
            num_entities=len(ent_ids),
            num_relations=len(rel_ids),
            entity_labels=list(ent_ids),
            relation_labels=list(rel_ids),
        )
