"""Dataset generators and file I/O.

The paper evaluates on FB15k, WN18, and Freebase-86m.  Those downloads are
not available in this offline environment, so this module generates
*synthetic stand-ins* that reproduce the property HET-KG's cache exploits:
**skewed access frequency** (Fig. 2 of the paper).  Entity degrees follow a
Zipf-like power law and the relation vocabulary is small relative to the
triple count, so a handful of relations and high-degree entities dominate
embedding accesses — exactly the regime in which hot-embedding caching pays
off.

Each generator is parameterised by a :class:`DatasetSpec` whose default
values mirror the published statistics (Table II of the paper), with
Freebase-86m scaled down by 1000x so it runs on one machine.  Pass ``scale``
to :func:`generate_dataset` to shrink/grow any spec proportionally.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for a synthetic knowledge graph.

    Parameters mirror the real dataset's published statistics; the two
    exponents control the skew of the degree / relation-frequency
    distributions (1.0 is classic Zipf).

    The generator embeds *community structure* so link prediction is
    learnable: entities belong to latent communities and each relation maps
    a head community to a fixed tail community (with ``structure_noise``
    probability of a random tail instead).  A translational model can
    represent this exactly — entities cluster by community and relations
    translate between cluster centroids — so trained MRR rises well above
    chance, as on the real datasets.
    """

    name: str
    num_entities: int
    num_relations: int
    num_triples: int
    entity_exponent: float = 0.85
    relation_exponent: float = 1.05
    num_communities: int | None = None  # default: ~sqrt(num_entities)
    structure_noise: float = 0.05
    seed: int = 0

    def scaled(self, scale: float) -> "DatasetSpec":
        """Proportionally resize the spec — down (``scale < 1``) or up
        (``scale > 1``, e.g. the ``memory-tiering`` experiment's multi-
        million-entity graphs).  The relation vocabulary shrinks as
        ``sqrt(scale)`` when shrinking because real KGs largely keep their
        relation vocabulary as they grow — this also preserves the
        relation-heavy communication profile (e.g. PBG's dense-relation
        cost) at small scale; when *up*scaling it is left unchanged for
        the same reason."""
        check_positive("scale", scale)
        if not math.isfinite(scale):
            raise ValueError(f"scale must be finite, got {scale!r}")
        return replace(
            self,
            name=f"{self.name}-x{scale:g}",
            num_entities=max(8, int(self.num_entities * scale)),
            num_relations=max(2, int(self.num_relations * min(1.0, scale**0.5))),
            num_triples=max(16, int(self.num_triples * scale)),
        )

    @property
    def communities(self) -> int:
        if self.num_communities is not None:
            return self.num_communities
        return max(4, int(round(self.num_entities**0.5)))


#: FB15k: 14,951 entities / 1,345 relations / 592,213 triples (Table II).
FB15K_SPEC = DatasetSpec(
    name="fb15k",
    num_entities=14_951,
    num_relations=1_345,
    num_triples=592_213,
    entity_exponent=0.85,
    relation_exponent=1.05,
    seed=15,
)

#: WN18: 40,943 entities / 18 relations / 151,442 triples (Table II).
WN18_SPEC = DatasetSpec(
    name="wn18",
    num_entities=40_943,
    num_relations=18,
    num_triples=151_442,
    entity_exponent=0.75,
    relation_exponent=0.9,
    seed=18,
)

#: Freebase-86m scaled down 1000x: 86,054 entities / 14,824 relations in the
#: paper; we keep the relation vocabulary at a proportional 1,500 so the
#: relation-frequency skew is preserved at the reduced scale.
FREEBASE86M_SPEC = DatasetSpec(
    name="freebase86m-mini",
    num_entities=86_054,
    num_relations=1_500,
    num_triples=338_586,
    entity_exponent=0.95,
    relation_exponent=1.1,
    seed=86,
)

SPECS: dict[str, DatasetSpec] = {
    spec.name: spec for spec in (FB15K_SPEC, WN18_SPEC, FREEBASE86M_SPEC)
}


def _zipf_weights(n: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Normalised Zipf(exponent) weights over a random permutation of ids.

    The permutation decouples "hotness" from id order so nothing downstream
    can accidentally exploit id locality.
    """
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    perm = rng.permutation(n)
    out = np.empty(n, dtype=np.float64)
    out[perm] = weights
    return out


def generate_dataset(
    spec: DatasetSpec | str,
    scale: float = 1.0,
    seed: int | None = None,
) -> KnowledgeGraph:
    """Generate a synthetic knowledge graph from ``spec``.

    Heads and tails are drawn from a Zipf-weighted entity distribution and
    relations from a Zipf-weighted relation distribution; exact duplicate
    triples and self-loops are regenerated.  Every entity is additionally
    touched by at least one triple so vocabularies have no dead ids.

    Parameters
    ----------
    spec:
        A :class:`DatasetSpec` or the name of a built-in one
        (``"fb15k"``, ``"wn18"``, ``"freebase86m-mini"``).
    scale:
        Proportional resize applied before generation (``0.01`` produces a
        1%-size graph with the same skew shape).
    seed:
        Overrides ``spec.seed`` when given.
    """
    if isinstance(spec, str):
        try:
            spec = SPECS[spec]
        except KeyError:
            raise KeyError(
                f"unknown dataset {spec!r}; available: {sorted(SPECS)}"
            ) from None
    if scale != 1.0:
        spec = spec.scaled(scale)
    rng = make_rng(spec.seed if seed is None else seed)

    n_ent, n_rel, n_tri = spec.num_entities, spec.num_relations, spec.num_triples
    ent_weights = _zipf_weights(n_ent, spec.entity_exponent, rng)
    rel_weights = _zipf_weights(n_rel, spec.relation_exponent, rng)

    # Latent structure: entity -> community, relation x community -> target
    # community.  The community map is *geometric* — communities have latent
    # centroids and each relation is a latent translation, with the target
    # community being the nearest centroid to (centroid + translation).  A
    # translational embedding model can therefore represent the generative
    # process, which is what makes the graph learnable (see DatasetSpec).
    n_comm = min(spec.communities, n_ent)
    community_of = rng.integers(0, n_comm, size=n_ent)
    latent_dim = 16
    centroids = rng.normal(0.0, 1.0, size=(n_comm, latent_dim))
    rel_vecs = rng.normal(0.0, 1.0, size=(n_rel, latent_dim))
    rel_map = np.empty((n_rel, n_comm), dtype=np.int64)
    for r in range(n_rel):
        shifted = centroids + rel_vecs[r]  # (n_comm, latent_dim)
        d2 = ((shifted[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=-1)
        rel_map[r] = np.argmin(d2, axis=1)
    members = [np.nonzero(community_of == c)[0] for c in range(n_comm)]
    member_weights = []
    for c in range(n_comm):
        w = ent_weights[members[c]]
        member_weights.append(w / w.sum() if w.sum() > 0 else None)

    def sample_tails(heads: np.ndarray, rels: np.ndarray) -> np.ndarray:
        """Structured tail choice: community dictated by (relation, head
        community), with ``structure_noise`` chance of a random tail."""
        target_comm = rel_map[rels, community_of[heads]]
        noise = rng.random(len(heads)) < spec.structure_noise
        tails = np.empty(len(heads), dtype=np.int64)
        if noise.any():
            tails[noise] = rng.choice(n_ent, size=int(noise.sum()), p=ent_weights)
        structured = np.nonzero(~noise)[0]
        for c in np.unique(target_comm[structured]):
            rows_c = structured[target_comm[structured] == c]
            pool, w = members[c], member_weights[c]
            if len(pool) == 0:
                tails[rows_c] = rng.choice(n_ent, size=len(rows_c), p=ent_weights)
            else:
                tails[rows_c] = rng.choice(pool, size=len(rows_c), p=w)
        return tails

    # A spanning set of triples guarantees every entity id occurs at least
    # once; heads cover all entities, tails follow the structure.
    chain_h = rng.permutation(n_ent)
    chain_r = rng.choice(n_rel, size=n_ent, p=rel_weights)
    chain_t = sample_tails(chain_h, chain_r)
    loops = chain_h == chain_t
    chain_t[loops] = (chain_t[loops] + 1) % n_ent
    rows = [np.stack([chain_h, chain_r, chain_t], axis=1)]
    produced = n_ent

    seen: set[tuple[int, int, int]] = {
        (int(h), int(r), int(t)) for h, r, t in rows[0]
    }
    rounds = 0
    while produced < n_tri:
        rounds += 1
        want = n_tri - produced
        # Oversample to absorb duplicate / self-loop rejections.
        batch = int(want * 1.3) + 16
        h = rng.choice(n_ent, size=batch, p=ent_weights)
        r = rng.choice(n_rel, size=batch, p=rel_weights)
        if rounds <= 50:
            t = sample_tails(h, r)
        else:
            # Dense corner: the structured triple space is nearly
            # exhausted; fall back to unstructured tails to terminate.
            t = rng.choice(n_ent, size=batch, p=ent_weights)
        fresh = []
        for hi, ri, ti in zip(h, r, t):
            if hi == ti:
                continue
            key = (int(hi), int(ri), int(ti))
            if key in seen:
                continue
            seen.add(key)
            fresh.append(key)
            if len(fresh) == want:
                break
        if fresh:
            rows.append(np.asarray(fresh, dtype=np.int64))
            produced += len(fresh)

    triples = np.concatenate(rows)[:n_tri]
    graph = KnowledgeGraph(triples, num_entities=n_ent, num_relations=n_rel)
    return graph


# ---------------------------------------------------------------------- I/O


def save_tsv(graph: KnowledgeGraph, path: str | os.PathLike[str]) -> None:
    """Write triples as tab-separated ``head\\trelation\\ttail`` lines.

    Uses labels when the graph has them, integer ids otherwise.  The format
    matches the files distributed with DGL-KE.
    """
    with open(path, "w", encoding="utf-8") as f:
        for h, r, t in graph:
            if graph.entity_labels is not None and graph.relation_labels is not None:
                f.write(
                    f"{graph.entity_labels[h]}\t{graph.relation_labels[r]}\t"
                    f"{graph.entity_labels[t]}\n"
                )
            else:
                f.write(f"{h}\t{r}\t{t}\n")


def load_tsv(path: str | os.PathLike[str]) -> KnowledgeGraph:
    """Load a TSV triple file, assigning integer ids in first-seen order."""

    def read_rows():
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                parts = line.split("\t")
                if len(parts) != 3:
                    raise ValueError(
                        f"{path}:{lineno}: expected 3 tab-separated fields, "
                        f"got {len(parts)}"
                    )
                yield parts[0], parts[1], parts[2]

    return KnowledgeGraph.from_labeled_triples(read_rows())
