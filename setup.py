"""Legacy setuptools shim.

Metadata lives in pyproject.toml; this file exists so `pip install -e .`
works in offline environments without the `wheel` package (pip falls back
to `setup.py develop` when no [build-system] table is declared).
"""

from setuptools import setup

setup()
